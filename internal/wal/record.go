package wal

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"math"
)

// Kind is the value type of a durable observation or truth, mirroring
// internal/data's property types without importing them: the durability
// substrate stores framed bytes, and the server converts at its
// boundary.
type Kind uint8

const (
	// Continuous marks a float64-valued record; Categorical a
	// string-valued one.
	Continuous  Kind = iota
	Categorical      // see Continuous
)

// Obs is one observation on the durable path — the unit the binary
// codec encodes and the WAL persists. Exactly one of F and Cat is
// meaningful, selected by Kind.
type Obs struct {
	// Source names the claiming source; Object and Property name the
	// entry it claims about.
	Source   string
	Object   string // see Source
	Property string // see Source
	// Kind selects the value payload: F for Continuous, Cat for
	// Categorical.
	Kind Kind
	F    float64 // see Kind
	Cat  string  // see Kind
	// TS is the observation's I-CRH timeline position; meaningful only
	// when HasTS is set.
	TS    int
	HasTS bool // see TS
}

// Observation flag bits (one byte per observation in the codec).
const (
	flagCategorical = 1 << 0
	flagHasTS       = 1 << 1
)

// maxFramePayload bounds a single framed record; anything larger is
// treated as corruption rather than allocated.
const maxFramePayload = 1 << 28 // 256 MiB

// strTable interns strings in first-mention order while encoding, so
// the codec's output is a pure function of the input sequence.
type strTable struct {
	byName map[string]uint64
	names  []string
}

func newStrTable() *strTable {
	return &strTable{byName: make(map[string]uint64)}
}

func (t *strTable) id(s string) uint64 {
	if id, ok := t.byName[s]; ok {
		return id
	}
	id := uint64(len(t.names))
	t.names = append(t.names, s)
	t.byName[s] = id
	return id
}

// appendString appends a length-prefixed string.
func appendString(dst []byte, s string) []byte {
	dst = binary.AppendUvarint(dst, uint64(len(s)))
	return append(dst, s...)
}

// EncodeObservations encodes a batch of observations with the compact
// binary codec: one string table (source/object/property/category
// strings interned in first-mention order) followed by per-observation
// varint ids and typed values. The encoding is canonical — a pure
// function of the observation sequence — so recovery and replication
// can compare payloads byte-for-byte.
func EncodeObservations(batch []Obs) []byte {
	tab := newStrTable()
	body := make([]byte, 0, 8+12*len(batch))
	body = binary.AppendUvarint(body, uint64(len(batch)))
	for _, o := range batch {
		var flags byte
		if o.Kind == Categorical {
			flags |= flagCategorical
		}
		if o.HasTS {
			flags |= flagHasTS
		}
		body = append(body, flags)
		body = binary.AppendUvarint(body, tab.id(o.Source))
		body = binary.AppendUvarint(body, tab.id(o.Object))
		body = binary.AppendUvarint(body, tab.id(o.Property))
		if o.Kind == Categorical {
			body = binary.AppendUvarint(body, tab.id(o.Cat))
		} else {
			body = binary.LittleEndian.AppendUint64(body, math.Float64bits(o.F))
		}
		if o.HasTS {
			body = binary.AppendVarint(body, int64(o.TS))
		}
	}
	out := make([]byte, 0, len(body)+8*len(tab.names)+4)
	out = binary.AppendUvarint(out, uint64(len(tab.names)))
	for _, s := range tab.names {
		out = appendString(out, s)
	}
	return append(out, body...)
}

// decoder walks an encoded payload with bounds checking; every read
// error is sticky so call sites can check once at the end of a group.
type decoder struct {
	b   []byte
	off int
	err error
}

func (d *decoder) fail(format string, args ...any) {
	if d.err == nil {
		d.err = fmt.Errorf(format, args...)
	}
}

func (d *decoder) uvarint() uint64 {
	if d.err != nil {
		return 0
	}
	v, n := binary.Uvarint(d.b[d.off:])
	if n <= 0 {
		d.fail("wal: truncated or malformed uvarint at offset %d", d.off)
		return 0
	}
	d.off += n
	return v
}

func (d *decoder) varint() int64 {
	if d.err != nil {
		return 0
	}
	v, n := binary.Varint(d.b[d.off:])
	if n <= 0 {
		d.fail("wal: truncated or malformed varint at offset %d", d.off)
		return 0
	}
	d.off += n
	return v
}

func (d *decoder) byte() byte {
	if d.err != nil {
		return 0
	}
	if d.off >= len(d.b) {
		d.fail("wal: truncated record at offset %d", d.off)
		return 0
	}
	v := d.b[d.off]
	d.off++
	return v
}

func (d *decoder) float64() float64 {
	if d.err != nil {
		return 0
	}
	if d.off+8 > len(d.b) {
		d.fail("wal: truncated float64 at offset %d", d.off)
		return 0
	}
	v := math.Float64frombits(binary.LittleEndian.Uint64(d.b[d.off:]))
	d.off += 8
	return v
}

func (d *decoder) string() string {
	n := d.uvarint()
	if d.err != nil {
		return ""
	}
	if n > uint64(len(d.b)-d.off) {
		d.fail("wal: string length %d exceeds remaining %d bytes", n, len(d.b)-d.off)
		return ""
	}
	s := string(d.b[d.off : d.off+int(n)])
	d.off += int(n)
	return s
}

// stringTable decodes the interned string table that prefixes every
// codec payload. The count is validated against the remaining bytes
// (every entry costs at least its one-byte length prefix) before any
// allocation, so corrupt counts cannot balloon memory.
func (d *decoder) stringTable() []string {
	n := d.uvarint()
	if d.err != nil {
		return nil
	}
	if n > uint64(len(d.b)-d.off) {
		d.fail("wal: string table of %d entries exceeds remaining %d bytes", n, len(d.b)-d.off)
		return nil
	}
	names := make([]string, 0, n)
	for i := uint64(0); i < n && d.err == nil; i++ {
		names = append(names, d.string())
	}
	return names
}

// tableString resolves a string-table index.
func (d *decoder) tableString(tab []string, id uint64, what string) string {
	if d.err != nil {
		return ""
	}
	if id >= uint64(len(tab)) {
		d.fail("wal: %s id %d out of range (table has %d strings)", what, id, len(tab))
		return ""
	}
	return tab[id]
}

// DecodeObservations decodes a payload produced by EncodeObservations.
// It never panics on malformed input: every length, count, and table
// index is validated and the first violation is returned as an error.
func DecodeObservations(b []byte) ([]Obs, error) {
	d := &decoder{b: b}
	tab := d.stringTable()
	n := d.uvarint()
	if d.err != nil {
		return nil, d.err
	}
	// The tightest real observation is 5 bytes (flags + four 1-byte
	// varints); reject counts the remaining bytes cannot possibly hold.
	if n > uint64(len(d.b)-d.off) {
		return nil, fmt.Errorf("wal: observation count %d exceeds remaining %d bytes", n, len(d.b)-d.off)
	}
	batch := make([]Obs, 0, n)
	for i := uint64(0); i < n; i++ {
		flags := d.byte()
		o := Obs{
			Source:   d.tableString(tab, d.uvarint(), "source"),
			Object:   d.tableString(tab, d.uvarint(), "object"),
			Property: d.tableString(tab, d.uvarint(), "property"),
		}
		if flags&flagCategorical != 0 {
			o.Kind = Categorical
			o.Cat = d.tableString(tab, d.uvarint(), "category")
		} else {
			o.F = d.float64()
		}
		if flags&flagHasTS != 0 {
			o.TS = int(d.varint())
			o.HasTS = true
		}
		if d.err != nil {
			return nil, d.err
		}
		batch = append(batch, o)
	}
	if d.off != len(d.b) {
		return nil, fmt.Errorf("wal: %d trailing bytes after %d observations", len(d.b)-d.off, n)
	}
	return batch, nil
}

// Frame layout: every durable record — WAL entry or snapshot body — is
// wrapped as [uint32 payload length][uint32 CRC32-IEEE of payload]
// [payload], all little-endian. A record whose length field runs past
// the file, or whose checksum does not match, is a torn or corrupt
// tail.
const frameHeader = 8

// appendFrame wraps payload in the length+CRC frame and appends it.
func appendFrame(dst, payload []byte) []byte {
	dst = binary.LittleEndian.AppendUint32(dst, uint32(len(payload)))
	dst = binary.LittleEndian.AppendUint32(dst, crc32.ChecksumIEEE(payload))
	return append(dst, payload...)
}

// tornTail reports whether a bad frame at off can be explained by a
// torn append — a crash cutting the final write short, or leaving its
// sectors partially unpersisted. Tearing only ever damages the last
// record written, so the damage must reach the end of the buffer: a
// checksum-bad frame with further data after it is interior corruption,
// which a torn write cannot produce.
func tornTail(b []byte, off int) bool {
	if off+frameHeader > len(b) {
		return true // header itself cut short
	}
	n := binary.LittleEndian.Uint32(b[off:])
	if n > maxFramePayload {
		// The length field never made it to disk; nothing after it is
		// parseable, so the whole remainder is the torn write.
		return true
	}
	end := uint64(off+frameHeader) + uint64(n)
	return end >= uint64(len(b))
}

// nextFrame extracts the frame starting at off, returning the payload
// and the offset just past it. ok is false when the bytes from off do
// not contain one whole, checksum-valid frame — the torn-tail signal.
func nextFrame(b []byte, off int) (payload []byte, next int, ok bool) {
	if off+frameHeader > len(b) {
		return nil, off, false
	}
	n := binary.LittleEndian.Uint32(b[off:])
	sum := binary.LittleEndian.Uint32(b[off+4:])
	if n > maxFramePayload || uint64(off+frameHeader)+uint64(n) > uint64(len(b)) {
		return nil, off, false
	}
	payload = b[off+frameHeader : off+frameHeader+int(n)]
	if crc32.ChecksumIEEE(payload) != sum {
		return nil, off, false
	}
	return payload, off + frameHeader + int(n), true
}
