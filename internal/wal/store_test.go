package wal

import (
	"errors"
	"math"
	"os"
	"path/filepath"
	"testing"
)

// closeDatasetLog is closeLog for the store's per-dataset handle.
func closeDatasetLog(t *testing.T, dl *DatasetLog) {
	t.Helper()
	if err := dl.Close(); err != nil {
		t.Errorf("close dataset log: %v", err)
	}
}

func sampleSnapshot(version int64) *Snapshot {
	return &Snapshot{
		Version: version,
		Sources: []string{"s1", "s2"},
		Props:   []Prop{{Name: "temp", Kind: Continuous}, {Name: "cond", Kind: Categorical}},
		Obs: []Obs{
			{Source: "s1", Object: "o1", Property: "temp", Kind: Continuous, F: 84},
			{Source: "s2", Object: "o1", Property: "cond", Kind: Categorical, Cat: "sunny", TS: 3, HasTS: true},
		},
		GT:      []Truth{{Object: "o1", Property: "temp", Kind: Continuous, F: 83}},
		Weights: []float64{1, 0.5},
		Accum:   []float64{0, 2.25},
		Chunks:  4,
		Warm: []Truth{
			{Object: "o1", Property: "cond", Kind: Categorical, Cat: "sunny"},
			{Object: "o1", Property: "temp", Kind: Continuous, F: 84},
		},
	}
}

func snapEqual(t *testing.T, a, b *Snapshot) {
	t.Helper()
	if a.Version != b.Version || a.Chunks != b.Chunks {
		t.Fatalf("version/chunks mismatch: %d/%d vs %d/%d", a.Version, a.Chunks, b.Version, b.Chunks)
	}
	if len(a.Sources) != len(b.Sources) || len(a.Props) != len(b.Props) ||
		len(a.Obs) != len(b.Obs) || len(a.GT) != len(b.GT) ||
		len(a.Weights) != len(b.Weights) || len(a.Accum) != len(b.Accum) || len(a.Warm) != len(b.Warm) {
		t.Fatalf("shape mismatch: %+v vs %+v", a, b)
	}
	for i := range a.Sources {
		if a.Sources[i] != b.Sources[i] {
			t.Fatalf("source %d: %q vs %q", i, a.Sources[i], b.Sources[i])
		}
	}
	for i := range a.Props {
		if a.Props[i] != b.Props[i] {
			t.Fatalf("prop %d: %+v vs %+v", i, a.Props[i], b.Props[i])
		}
	}
	for i := range a.Obs {
		if !obsEqual(a.Obs[i], b.Obs[i]) {
			t.Fatalf("obs %d: %+v vs %+v", i, a.Obs[i], b.Obs[i])
		}
	}
	for i := range a.Weights {
		if math.Float64bits(a.Weights[i]) != math.Float64bits(b.Weights[i]) ||
			math.Float64bits(a.Accum[i]) != math.Float64bits(b.Accum[i]) {
			t.Fatalf("weights/accum %d differ", i)
		}
	}
}

func TestSnapshotRoundTrip(t *testing.T) {
	s := sampleSnapshot(7)
	dec, err := decodeSnapshot(encodeSnapshot(s))
	if err != nil {
		t.Fatal(err)
	}
	snapEqual(t, s, dec)

	// Damage never panics.
	enc := encodeSnapshot(s)
	for i := range enc {
		mut := append([]byte(nil), enc...)
		mut[i] ^= 0x5a
		decodeSnapshot(mut)
	}
	if _, err := decodeSnapshot(enc[:len(enc)/3]); err == nil {
		t.Error("truncated snapshot decoded")
	}
}

func TestStoreCreateOpenRemove(t *testing.T) {
	store, err := OpenStore(t.TempDir(), Options{Fsync: FsyncBatch})
	if err != nil {
		t.Fatal(err)
	}
	dl, err := store.Create("ds", sampleSnapshot(1))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := store.Create("ds", sampleSnapshot(1)); err == nil {
		t.Fatal("duplicate create succeeded")
	}
	if err := dl.AppendBatch(2, batchN(2)); err != nil {
		t.Fatal(err)
	}
	if err := dl.AppendBatch(3, batchN(3)); err != nil {
		t.Fatal(err)
	}
	closeDatasetLog(t, dl)

	names, err := store.List()
	if err != nil || len(names) != 1 || names[0] != "ds" {
		t.Fatalf("List: %v %v", names, err)
	}
	dl2, snap, batches, err := store.Open("ds")
	if err != nil {
		t.Fatal(err)
	}
	snapEqual(t, sampleSnapshot(1), snap)
	if len(batches) != 2 || batches[0].Version != 2 || batches[1].Version != 3 {
		t.Fatalf("replay: %+v", batches)
	}
	closeDatasetLog(t, dl2)

	if err := store.Remove("ds"); err != nil {
		t.Fatal(err)
	}
	if names, _ := store.List(); len(names) != 0 {
		t.Fatalf("dataset survives removal: %v", names)
	}
	if _, _, _, err := store.Open("ds"); !errors.Is(err, ErrNoSnapshot) {
		t.Fatalf("open after remove: %v", err)
	}
	// A deleted name can be created again from empty state.
	if _, err := store.Create("ds", sampleSnapshot(1)); err != nil {
		t.Fatalf("re-create after remove: %v", err)
	}
}

func TestStoreSnapshotCompaction(t *testing.T) {
	store, err := OpenStore(t.TempDir(), Options{Fsync: FsyncOff, SegmentBytes: 96})
	if err != nil {
		t.Fatal(err)
	}
	dl, err := store.Create("ds", sampleSnapshot(1))
	if err != nil {
		t.Fatal(err)
	}
	for v := int64(2); v <= 12; v++ {
		if err := dl.AppendBatch(v, batchN(int(v))); err != nil {
			t.Fatal(err)
		}
	}
	before := dl.SegmentCount()
	snap := sampleSnapshot(12)
	if err := dl.WriteSnapshot(snap); err != nil {
		t.Fatal(err)
	}
	if dl.SegmentCount() >= before {
		t.Fatalf("compaction retired nothing (%d -> %d)", before, dl.SegmentCount())
	}
	closeDatasetLog(t, dl)

	// Old snapshots pruned: only snap-12 remains.
	entries, _ := os.ReadDir(filepath.Join(store.Dir(), "ds"))
	snaps := 0
	for _, e := range entries {
		if v, ok := parseSnapName(e.Name()); ok {
			snaps++
			if v != 12 {
				t.Errorf("stale snapshot %s survived pruning", e.Name())
			}
		}
	}
	if snaps != 1 {
		t.Errorf("%d snapshot files, want 1", snaps)
	}

	_, got, batches, err := store.Open("ds")
	if err != nil {
		t.Fatal(err)
	}
	snapEqual(t, snap, got)
	if len(batches) != 0 {
		t.Fatalf("batches covered by the snapshot replayed: %+v", batches)
	}
}

func TestStoreCorruptNewestSnapshotFallsBack(t *testing.T) {
	store, err := OpenStore(t.TempDir(), Options{})
	if err != nil {
		t.Fatal(err)
	}
	dl, err := store.Create("ds", sampleSnapshot(1))
	if err != nil {
		t.Fatal(err)
	}
	closeDatasetLog(t, dl)
	// Hand-write a damaged newer snapshot; Open must fall back to v1.
	bad := filepath.Join(store.Dir(), "ds", snapName(9))
	if err := os.WriteFile(bad, []byte("crhsnap\x01garbage"), 0o644); err != nil {
		t.Fatal(err)
	}
	_, snap, _, err := store.Open("ds")
	if err != nil {
		t.Fatal(err)
	}
	if snap.Version != 1 {
		t.Fatalf("loaded version %d, want fallback to 1", snap.Version)
	}
}

func TestOpenStoreSweepsDebris(t *testing.T) {
	dir := t.TempDir()
	os.MkdirAll(filepath.Join(dir, ".tmp-half"), 0o755)
	os.MkdirAll(filepath.Join(dir, ".del-gone"), 0o755)
	store, err := OpenStore(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	entries, _ := os.ReadDir(dir)
	if len(entries) != 0 {
		t.Fatalf("debris survived: %v", entries)
	}
	if names, _ := store.List(); len(names) != 0 {
		t.Fatalf("debris listed as datasets: %v", names)
	}
}
