// Command datagen emits the synthetic multi-source data sets used in the
// experiments, in the library's TSV format, so they can be inspected,
// versioned, or fed to cmd/crh.
//
// Usage:
//
//	datagen -dataset weather > weather.tsv
//	datagen -dataset adult -rows 5000 -seed 7 > adult.tsv
//	datagen -dataset stock -symbols 100 -days 5 | crh -quiet
//
// Every output includes the ground-truth rows (T records), so cmd/crh
// evaluates automatically.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	crh "github.com/crhkit/crh"
	"github.com/crhkit/crh/internal/obs/buildinfo"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

// run is the testable entry point; it returns the process exit code.
func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("datagen", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		dataset = fs.String("dataset", "weather", "weather | stock | flight | adult | bank")
		seed    = fs.Int64("seed", 1, "random seed")
		rows    = fs.Int("rows", 0, "rows for adult/bank (0 = original UCI size)")
		symbols = fs.Int("symbols", 0, "symbols for stock (0 = default)")
		flights = fs.Int("flights", 0, "flights for flight (0 = default)")
		days    = fs.Int("days", 0, "days for weather/stock/flight (0 = default)")
		cities  = fs.Int("cities", 0, "cities for weather (0 = default)")
		version = fs.Bool("version", false, "print version information and exit")
	)
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if *version {
		buildinfo.Print(stderr, "datagen")
		return 0
	}

	var (
		d  *crh.Dataset
		gt *crh.Table
	)
	switch *dataset {
	case "weather":
		d, gt = crh.GenerateWeather(crh.WeatherOptions{Seed: *seed, Cities: *cities, Days: *days})
	case "stock":
		d, gt = crh.GenerateStock(crh.StockOptions{Seed: *seed, Symbols: *symbols, Days: *days})
	case "flight":
		d, gt = crh.GenerateFlight(crh.FlightOptions{Seed: *seed, Flights: *flights, Days: *days})
	case "adult":
		d, gt = crh.GenerateAdult(crh.UCIOptions{Seed: *seed, Rows: *rows})
	case "bank":
		d, gt = crh.GenerateBank(crh.UCIOptions{Seed: *seed, Rows: *rows})
	default:
		fmt.Fprintf(stderr, "datagen: unknown dataset %q\n", *dataset)
		return 2
	}
	if err := crh.WriteDataset(stdout, d, gt); err != nil {
		fmt.Fprintf(stderr, "datagen: %v\n", err)
		return 1
	}
	return 0
}
