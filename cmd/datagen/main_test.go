package main

import (
	"bytes"
	"strings"
	"testing"

	crh "github.com/crhkit/crh"
)

func TestDatagenAllDatasets(t *testing.T) {
	cases := [][]string{
		{"-dataset", "weather", "-cities", "2", "-days", "3"},
		{"-dataset", "stock", "-symbols", "3", "-days", "2"},
		{"-dataset", "flight", "-flights", "3", "-days", "2"},
		{"-dataset", "adult", "-rows", "20"},
		{"-dataset", "bank", "-rows", "20"},
	}
	for _, args := range cases {
		var out, errB bytes.Buffer
		if code := run(args, &out, &errB); code != 0 {
			t.Fatalf("%v: exit %d (%s)", args, code, errB.String())
		}
		// The emitted TSV must decode back into a valid dataset with
		// ground truth.
		d, gt, err := crh.ReadDataset(&out)
		if err != nil {
			t.Fatalf("%v: decode: %v", args, err)
		}
		if d.NumObservations() == 0 {
			t.Fatalf("%v: empty dataset", args)
		}
		if gt == nil || gt.Count() == 0 {
			t.Fatalf("%v: no ground truth", args)
		}
	}
}

func TestDatagenDeterministicOutput(t *testing.T) {
	var a, b bytes.Buffer
	run([]string{"-dataset", "adult", "-rows", "10", "-seed", "3"}, &a, &bytes.Buffer{})
	run([]string{"-dataset", "adult", "-rows", "10", "-seed", "3"}, &b, &bytes.Buffer{})
	if a.String() != b.String() {
		t.Fatal("same seed produced different output")
	}
}

func TestDatagenErrors(t *testing.T) {
	var out, errB bytes.Buffer
	if code := run([]string{"-dataset", "nope"}, &out, &errB); code != 2 {
		t.Fatalf("unknown dataset: exit %d", code)
	}
	if !strings.Contains(errB.String(), "unknown dataset") {
		t.Fatal("error message missing")
	}
	if code := run([]string{"-badflag"}, &out, &errB); code != 2 {
		t.Fatal("bad flag should exit 2")
	}
}

// TestVersionFlag checks -version prints build identity and exits 0.
func TestVersionFlag(t *testing.T) {
	var out, errB bytes.Buffer
	if code := run([]string{"-version"}, &out, &errB); code != 0 {
		t.Fatalf("-version exit %d", code)
	}
	if !strings.Contains(errB.String(), "datagen ") {
		t.Fatalf("-version output %q", errB.String())
	}
}
