// Command crh runs truth discovery on a multi-source observation file.
//
// Usage:
//
//	crh [flags] input.tsv
//	cat input.tsv | crh [flags]
//
// The input is the library's TSV format (see package crh's WriteDataset):
// property declarations followed by one observation per line; optional T
// lines carry ground truth, in which case the tool also prints Error Rate
// and MNAD. Output: one resolved value per entry, then the source weights.
//
// Flags select the loss functions, weight scheme, and optionally the
// incremental (streaming) mode for timestamped data. -trace writes one
// JSON record per solver iteration (see docs/OBSERVABILITY.md).
package main

import (
	"flag"
	"fmt"
	"io"
	"math"
	"os"
	"strings"

	crh "github.com/crhkit/crh"
	"github.com/crhkit/crh/internal/obs/buildinfo"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdin, os.Stdout, os.Stderr))
}

// run is the testable entry point; it returns the process exit code.
func run(args []string, stdin io.Reader, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("crh", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		contLoss = fs.String("continuous-loss", "absolute", "continuous loss: absolute (weighted median) | squared (weighted mean) | huber")
		catLoss  = fs.String("categorical-loss", "zero-one", "categorical loss: zero-one (weighted vote) | probabilistic | edit-distance")
		scheme   = fs.String("weights", "exp-max", "weight scheme: exp-max | exp-sum | best-source | top-j | catd")
		topJ     = fs.Int("j", 3, "number of sources for -weights top-j")
		streamW  = fs.Int("stream-window", 0, "run incremental CRH with this window size over timestamped data (0 = batch)")
		live     = fs.Bool("live", false, "with -stream-window: process the input as an unbounded stream (constant memory, truths printed per chunk, no evaluation)")
		decay    = fs.Float64("decay", 1, "I-CRH decay rate α in [0,1]")
		quiet    = fs.Bool("quiet", false, "print only weights and evaluation, not per-entry truths")
		method   = fs.String("method", "crh", "resolution method: crh, or a baseline name (-list-methods)")
		listM    = fs.Bool("list-methods", false, "list the registered method names and exit")
		traceF   = fs.String("trace", "", "write one JSONL record per solver iteration to this file (batch CRH only; see docs/OBSERVABILITY.md)")
		version  = fs.Bool("version", false, "print version information and exit")
	)
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if *version {
		buildinfo.Print(stderr, "crh")
		return 0
	}

	if *listM {
		fmt.Fprintln(stdout, "crh")
		for _, name := range crh.ListBaselines() {
			fmt.Fprintln(stdout, name)
		}
		return 0
	}

	in := stdin
	if fs.NArg() > 0 {
		f, err := os.Open(fs.Arg(0))
		if err != nil {
			fmt.Fprintf(stderr, "crh: %v\n", err)
			return 1
		}
		//lint:ignore errflow the input file is read-only; close cannot lose buffered writes
		defer f.Close()
		in = f
	}

	opts, code := buildOptions(*contLoss, *catLoss, *scheme, *topJ, stderr)
	if code != 0 {
		return code
	}

	var trace *crh.JSONLTrace
	if *traceF != "" {
		if *method != "crh" || *streamW > 0 || *live {
			fmt.Fprintln(stderr, "crh: -trace only applies to batch -method crh")
			return 2
		}
		tf, err := os.Create(*traceF)
		if err != nil {
			fmt.Fprintf(stderr, "crh: %v\n", err)
			return 1
		}
		// The trace is an output file: a failed close means lost buffered
		// writes, so it must be reported, not swallowed.
		defer func() {
			if err := tf.Close(); err != nil {
				fmt.Fprintf(stderr, "crh: close trace %s: %v\n", *traceF, err)
			}
		}()
		trace = crh.NewJSONLTrace(tf)
		opts.Trace = trace
	}

	if *live {
		if *streamW <= 0 {
			fmt.Fprintln(stderr, "crh: -live requires -stream-window > 0")
			return 2
		}
		return runLive(in, *streamW, *decay, opts, *quiet, stdout, stderr)
	}

	d, gt, err := crh.ReadDataset(in)
	if err != nil {
		fmt.Fprintf(stderr, "crh: %v\n", err)
		return 1
	}

	var truths *crh.Table
	var weights []float64
	if *method != "crh" {
		m, ok := crh.BaselineByName(*method)
		if !ok {
			fmt.Fprintf(stderr, "crh: unknown method %q (known: crh, %s)\n", *method, strings.Join(crh.ListBaselines(), ", "))
			return 2
		}
		if *streamW > 0 {
			fmt.Fprintln(stderr, "crh: -stream-window only applies to -method crh")
			return 2
		}
		truths, weights = m.Resolve(d)
		fmt.Fprintf(stdout, "# %s\n", m.Name())
	} else if *streamW > 0 {
		res, err := crh.RunStream(d, *streamW, crh.StreamOptions{Core: opts, Decay: *decay, DecaySet: true})
		if err != nil {
			fmt.Fprintf(stderr, "crh: %v\n", err)
			return 1
		}
		truths, weights = res.Truths, res.Weights
		fmt.Fprintf(stdout, "# incremental CRH: %d chunks, window %d\n", res.ChunkCount, *streamW)
	} else {
		res, err := crh.Run(d, opts)
		if err != nil {
			fmt.Fprintf(stderr, "crh: %v\n", err)
			return 1
		}
		truths, weights = res.Truths, res.Weights
		fmt.Fprintf(stdout, "# CRH converged=%v iterations=%d\n", res.Converged, res.Iterations)
		if trace != nil {
			if err := trace.Err(); err != nil {
				fmt.Fprintf(stderr, "crh: trace: %v\n", err)
				return 1
			}
			fmt.Fprintf(stderr, "crh: wrote %d trace records to %s\n", res.Iterations, *traceF)
		}
	}

	if !*quiet {
		printTruths(stdout, d, truths)
	}
	if weights != nil {
		fmt.Fprintln(stdout, "# source weights")
		for k := 0; k < d.NumSources(); k++ {
			fmt.Fprintf(stdout, "W\t%s\t%.6f\n", d.SourceName(k), weights[k])
		}
	}
	if gt != nil {
		m := crh.Evaluate(d, truths, gt)
		fmt.Fprintln(stdout, "# evaluation against supplied ground truth")
		if !math.IsNaN(m.ErrorRate) {
			fmt.Fprintf(stdout, "ErrorRate\t%.4f\t(%d of %d categorical entries wrong)\n", m.ErrorRate, m.CatWrong, m.CatEntries)
		}
		if !math.IsNaN(m.MNAD) {
			fmt.Fprintf(stdout, "MNAD\t%.4f\t(%d continuous entries)\n", m.MNAD, m.ContEntries)
		}
	}
	return 0
}

// buildOptions translates the CLI's loss/scheme flags. The second return
// is a non-zero exit code on invalid flags.
func buildOptions(contLoss, catLoss, scheme string, topJ int, stderr io.Writer) (crh.Options, int) {
	opts := crh.Options{}
	switch contLoss {
	case "absolute":
		opts.ContinuousLoss = crh.AbsoluteLoss()
	case "squared":
		opts.ContinuousLoss = crh.SquaredLoss()
	case "huber":
		opts.ContinuousLoss = crh.HuberLoss(0)
	default:
		fmt.Fprintf(stderr, "crh: unknown continuous loss %q\n", contLoss)
		return opts, 2
	}
	switch catLoss {
	case "zero-one":
		opts.CategoricalLoss = crh.ZeroOneLoss()
	case "probabilistic":
		opts.CategoricalLoss = crh.ProbabilisticLoss()
	case "edit-distance":
		opts.CategoricalLoss = crh.EditDistanceLoss()
	default:
		fmt.Fprintf(stderr, "crh: unknown categorical loss %q\n", catLoss)
		return opts, 2
	}
	switch scheme {
	case "exp-max":
		opts.Scheme = crh.ExpMaxWeights()
	case "exp-sum":
		opts.Scheme = crh.ExpSumWeights()
	case "best-source":
		opts.Scheme = crh.BestSourceWeights()
	case "top-j":
		opts.Scheme = crh.TopJWeights(topJ)
	case "catd":
		opts.Scheme = crh.CATDWeights(0)
	default:
		fmt.Fprintf(stderr, "crh: unknown weight scheme %q\n", scheme)
		return opts, 2
	}
	return opts, 0
}

// runLive processes the input as an unbounded stream in constant memory:
// each window's truths are printed as soon as the window closes, using
// only the source weights learned so far.
func runLive(in io.Reader, window int, decay float64, opts crh.Options, quiet bool, stdout, stderr io.Writer) int {
	ts, err := crh.NewTSVStream(in, window)
	if err != nil {
		fmt.Fprintf(stderr, "crh: %v\n", err)
		return 2
	}
	proc := crh.NewStreamProcessor(0, crh.StreamOptions{Core: opts, Decay: decay, DecaySet: true})
	chunks := 0
	for {
		ch, err := ts.Next()
		if err == io.EOF {
			break
		}
		if err != nil {
			fmt.Fprintf(stderr, "crh: %v\n", err)
			return 1
		}
		truths := proc.Process(ch.Data)
		chunks++
		fmt.Fprintf(stdout, "# window %d: %d entries resolved\n", ch.Timestamp, truths.Count())
		if !quiet {
			printTruths(stdout, ch.Data, truths)
		}
	}
	fmt.Fprintf(stdout, "# live stream complete: %d windows\n", chunks)
	fmt.Fprintln(stdout, "# source weights")
	ws := proc.Weights()
	for k := 0; k < ts.NumSources(); k++ {
		fmt.Fprintf(stdout, "W\t%s\t%.6f\n", ts.SourceName(k), ws[k])
	}
	return 0
}

func printTruths(w io.Writer, d *crh.Dataset, truths *crh.Table) {
	fmt.Fprintln(w, "# resolved truths: object, property, value")
	for i := 0; i < d.NumObjects(); i++ {
		for m := 0; m < d.NumProps(); m++ {
			v, ok := truths.GetAt(i, m)
			if !ok {
				continue
			}
			p := d.Prop(m)
			if p.Type == crh.Categorical {
				fmt.Fprintf(w, "R\t%s\t%s\t%s\n", d.ObjectName(i), p.Name, p.CatName(int(v.C)))
			} else {
				fmt.Fprintf(w, "R\t%s\t%s\t%g\n", d.ObjectName(i), p.Name, v.F)
			}
		}
	}
}
