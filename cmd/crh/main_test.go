package main

import (
	"bytes"
	"strings"
	"testing"
)

const sampleTSV = `# sample
P	temp	continuous
P	cond	categorical
V	nyc	temp	s1	80
V	nyc	temp	s2	82
V	nyc	temp	s3	60
V	nyc	cond	s1	sunny
V	nyc	cond	s2	sunny
V	nyc	cond	s3	rain
T	nyc	temp	81
T	nyc	cond	sunny
`

const streamTSV = `P	x	continuous
O	d0	0
O	d1	1
V	d0	x	good	10
V	d0	x	bad	90
V	d1	x	good	11
V	d1	x	bad	-40
V	d0	x	mid	10.5
V	d1	x	mid	11.5
`

func runCLI(t *testing.T, args []string, stdin string) (string, string, int) {
	t.Helper()
	var out, errB bytes.Buffer
	code := run(args, strings.NewReader(stdin), &out, &errB)
	return out.String(), errB.String(), code
}

func TestCLIBatch(t *testing.T) {
	out, errS, code := runCLI(t, nil, sampleTSV)
	if code != 0 {
		t.Fatalf("exit %d, stderr %q", code, errS)
	}
	for _, want := range []string{
		"# CRH converged=",
		"R\tnyc\tcond\tsunny",
		"W\ts1\t",
		"ErrorRate\t0.0000",
		"MNAD\t",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q:\n%s", want, out)
		}
	}
	// The resolved temperature should be near the consensus, not the
	// outlier.
	if strings.Contains(out, "R\tnyc\ttemp\t60") {
		t.Error("outlier chosen as truth")
	}
}

func TestCLIQuiet(t *testing.T) {
	out, _, code := runCLI(t, []string{"-quiet"}, sampleTSV)
	if code != 0 {
		t.Fatal("exit")
	}
	if strings.Contains(out, "R\tnyc") {
		t.Error("-quiet printed truths")
	}
	if !strings.Contains(out, "# source weights") {
		t.Error("weights missing")
	}
}

func TestCLIAllOptionCombos(t *testing.T) {
	for _, cl := range []string{"absolute", "squared", "huber"} {
		for _, kl := range []string{"zero-one", "probabilistic", "edit-distance"} {
			for _, w := range []string{"exp-max", "exp-sum", "best-source", "top-j", "catd"} {
				_, errS, code := runCLI(t, []string{"-continuous-loss", cl, "-categorical-loss", kl, "-weights", w, "-quiet"}, sampleTSV)
				if code != 0 {
					t.Fatalf("%s/%s/%s: exit %d (%s)", cl, kl, w, code, errS)
				}
			}
		}
	}
}

func TestCLIStreaming(t *testing.T) {
	out, errS, code := runCLI(t, []string{"-stream-window", "1", "-decay", "0.5", "-quiet"}, streamTSV)
	if code != 0 {
		t.Fatalf("exit %d: %s", code, errS)
	}
	if !strings.Contains(out, "# incremental CRH: 2 chunks") {
		t.Errorf("stream header missing:\n%s", out)
	}
}

func TestCLIErrors(t *testing.T) {
	cases := []struct {
		name  string
		args  []string
		stdin string
		code  int
	}{
		{"bad flag", []string{"-nonsense"}, sampleTSV, 2},
		{"bad loss", []string{"-continuous-loss", "cubic"}, sampleTSV, 2},
		{"bad cat loss", []string{"-categorical-loss", "x"}, sampleTSV, 2},
		{"bad scheme", []string{"-weights", "x"}, sampleTSV, 2},
		{"bad input", nil, "garbage\tdata\n", 1},
		{"missing file", []string{"/nonexistent/file.tsv"}, "", 1},
		{"stream without timestamps", []string{"-stream-window", "1"}, sampleTSV, 1},
	}
	for _, c := range cases {
		_, errS, code := runCLI(t, c.args, c.stdin)
		if code != c.code {
			t.Errorf("%s: exit %d, want %d (stderr %q)", c.name, code, c.code, errS)
		}
	}
}

const liveTSV = `P	x	continuous
O	d0	0
V	d0	x	good	10
V	d0	x	bad	90
V	d0	x	mid	10.5
O	d1	1
V	d1	x	good	11
V	d1	x	bad	-40
V	d1	x	mid	11.5
O	d2	2
V	d2	x	good	12
V	d2	x	bad	200
V	d2	x	mid	12.5
`

func TestCLILiveStreaming(t *testing.T) {
	out, errS, code := runCLI(t, []string{"-stream-window", "1", "-live"}, liveTSV)
	if code != 0 {
		t.Fatalf("exit %d: %s", code, errS)
	}
	for _, want := range []string{
		"# window 0: 1 entries resolved",
		"# window 2: 1 entries resolved",
		"# live stream complete: 3 windows",
		"W\tgood\t",
		"W\tbad\t",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("live output missing %q:\n%s", want, out)
		}
	}
}

func TestCLILiveRequiresWindow(t *testing.T) {
	_, _, code := runCLI(t, []string{"-live"}, liveTSV)
	if code != 2 {
		t.Fatalf("exit %d, want 2", code)
	}
}

func TestCLILiveBadStream(t *testing.T) {
	_, _, code := runCLI(t, []string{"-stream-window", "1", "-live"}, "V\to\tp\ts\t1\n")
	if code != 1 {
		t.Fatalf("exit %d, want 1", code)
	}
}
