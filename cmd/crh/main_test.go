package main

import (
	"bytes"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

const sampleTSV = `# sample
P	temp	continuous
P	cond	categorical
V	nyc	temp	s1	80
V	nyc	temp	s2	82
V	nyc	temp	s3	60
V	nyc	cond	s1	sunny
V	nyc	cond	s2	sunny
V	nyc	cond	s3	rain
T	nyc	temp	81
T	nyc	cond	sunny
`

const streamTSV = `P	x	continuous
O	d0	0
O	d1	1
V	d0	x	good	10
V	d0	x	bad	90
V	d1	x	good	11
V	d1	x	bad	-40
V	d0	x	mid	10.5
V	d1	x	mid	11.5
`

func runCLI(t *testing.T, args []string, stdin string) (string, string, int) {
	t.Helper()
	var out, errB bytes.Buffer
	code := run(args, strings.NewReader(stdin), &out, &errB)
	return out.String(), errB.String(), code
}

func TestCLIBatch(t *testing.T) {
	out, errS, code := runCLI(t, nil, sampleTSV)
	if code != 0 {
		t.Fatalf("exit %d, stderr %q", code, errS)
	}
	for _, want := range []string{
		"# CRH converged=",
		"R\tnyc\tcond\tsunny",
		"W\ts1\t",
		"ErrorRate\t0.0000",
		"MNAD\t",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q:\n%s", want, out)
		}
	}
	// The resolved temperature should be near the consensus, not the
	// outlier.
	if strings.Contains(out, "R\tnyc\ttemp\t60") {
		t.Error("outlier chosen as truth")
	}
}

func TestCLIQuiet(t *testing.T) {
	out, _, code := runCLI(t, []string{"-quiet"}, sampleTSV)
	if code != 0 {
		t.Fatal("exit")
	}
	if strings.Contains(out, "R\tnyc") {
		t.Error("-quiet printed truths")
	}
	if !strings.Contains(out, "# source weights") {
		t.Error("weights missing")
	}
}

func TestCLIAllOptionCombos(t *testing.T) {
	for _, cl := range []string{"absolute", "squared", "huber"} {
		for _, kl := range []string{"zero-one", "probabilistic", "edit-distance"} {
			for _, w := range []string{"exp-max", "exp-sum", "best-source", "top-j", "catd"} {
				_, errS, code := runCLI(t, []string{"-continuous-loss", cl, "-categorical-loss", kl, "-weights", w, "-quiet"}, sampleTSV)
				if code != 0 {
					t.Fatalf("%s/%s/%s: exit %d (%s)", cl, kl, w, code, errS)
				}
			}
		}
	}
}

func TestCLIStreaming(t *testing.T) {
	out, errS, code := runCLI(t, []string{"-stream-window", "1", "-decay", "0.5", "-quiet"}, streamTSV)
	if code != 0 {
		t.Fatalf("exit %d: %s", code, errS)
	}
	if !strings.Contains(out, "# incremental CRH: 2 chunks") {
		t.Errorf("stream header missing:\n%s", out)
	}
}

func TestCLIErrors(t *testing.T) {
	cases := []struct {
		name  string
		args  []string
		stdin string
		code  int
	}{
		{"bad flag", []string{"-nonsense"}, sampleTSV, 2},
		{"bad loss", []string{"-continuous-loss", "cubic"}, sampleTSV, 2},
		{"bad cat loss", []string{"-categorical-loss", "x"}, sampleTSV, 2},
		{"bad scheme", []string{"-weights", "x"}, sampleTSV, 2},
		{"bad input", nil, "garbage\tdata\n", 1},
		{"missing file", []string{"/nonexistent/file.tsv"}, "", 1},
		{"stream without timestamps", []string{"-stream-window", "1"}, sampleTSV, 1},
	}
	for _, c := range cases {
		_, errS, code := runCLI(t, c.args, c.stdin)
		if code != c.code {
			t.Errorf("%s: exit %d, want %d (stderr %q)", c.name, code, c.code, errS)
		}
	}
}

const liveTSV = `P	x	continuous
O	d0	0
V	d0	x	good	10
V	d0	x	bad	90
V	d0	x	mid	10.5
O	d1	1
V	d1	x	good	11
V	d1	x	bad	-40
V	d1	x	mid	11.5
O	d2	2
V	d2	x	good	12
V	d2	x	bad	200
V	d2	x	mid	12.5
`

func TestCLILiveStreaming(t *testing.T) {
	out, errS, code := runCLI(t, []string{"-stream-window", "1", "-live"}, liveTSV)
	if code != 0 {
		t.Fatalf("exit %d: %s", code, errS)
	}
	for _, want := range []string{
		"# window 0: 1 entries resolved",
		"# window 2: 1 entries resolved",
		"# live stream complete: 3 windows",
		"W\tgood\t",
		"W\tbad\t",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("live output missing %q:\n%s", want, out)
		}
	}
}

func TestCLILiveRequiresWindow(t *testing.T) {
	_, _, code := runCLI(t, []string{"-live"}, liveTSV)
	if code != 2 {
		t.Fatalf("exit %d, want 2", code)
	}
}

func TestCLILiveBadStream(t *testing.T) {
	_, _, code := runCLI(t, []string{"-stream-window", "1", "-live"}, "V\to\tp\ts\t1\n")
	if code != 1 {
		t.Fatalf("exit %d, want 1", code)
	}
}

// TestCLITrace runs batch CRH with -trace and validates the JSONL
// output: one record per iteration, objective decreasing keys present.
func TestCLITrace(t *testing.T) {
	path := filepath.Join(t.TempDir(), "trace.jsonl")
	out, errS, code := runCLI(t, []string{"-trace", path, "-quiet"}, sampleTSV)
	if code != 0 {
		t.Fatalf("exit %d: %s", code, errS)
	}
	if !strings.Contains(errS, "trace records") {
		t.Errorf("stderr missing trace note: %q", errS)
	}
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(string(raw)), "\n")
	var iters int
	if _, err := fmt.Sscanf(out[strings.Index(out, "iterations="):], "iterations=%d", &iters); err != nil {
		t.Fatalf("parse iterations from %q: %v", out, err)
	}
	if len(lines) != iters {
		t.Fatalf("%d trace records for %d iterations", len(lines), iters)
	}
	for i, line := range lines {
		var rec map[string]any
		if err := json.Unmarshal([]byte(line), &rec); err != nil {
			t.Fatalf("line %d not JSON: %v", i, err)
		}
		for _, key := range []string{"iter", "objective", "weight_phase_ns", "truth_phase_ns", "truth_changes", "weights", "converged"} {
			if _, ok := rec[key]; !ok {
				t.Errorf("record %d missing %q: %s", i, key, line)
			}
		}
		if got := rec["iter"].(float64); int(got) != i+1 {
			t.Errorf("record %d iter = %v", i, got)
		}
	}
	var last map[string]any
	json.Unmarshal([]byte(lines[len(lines)-1]), &last)
	if last["converged"] != true {
		t.Errorf("final record converged = %v", last["converged"])
	}
}

// TestCLITraceErrors covers -trace misuse and unwritable paths.
func TestCLITraceErrors(t *testing.T) {
	if _, _, code := runCLI(t, []string{"-trace", "x.jsonl", "-method", "mean"}, sampleTSV); code != 2 {
		t.Fatalf("trace+baseline: exit %d, want 2", code)
	}
	if _, _, code := runCLI(t, []string{"-trace", "x.jsonl", "-stream-window", "1"}, streamTSV); code != 2 {
		t.Fatalf("trace+stream: exit %d, want 2", code)
	}
	if _, _, code := runCLI(t, []string{"-trace", "/nonexistent-dir/x.jsonl"}, sampleTSV); code != 1 {
		t.Fatalf("unwritable trace path: exit %d, want 1", code)
	}
}

// TestCLIVersion checks -version prints build identity and exits 0.
func TestCLIVersion(t *testing.T) {
	_, errS, code := runCLI(t, []string{"-version"}, "")
	if code != 0 {
		t.Fatalf("-version exit %d", code)
	}
	if !strings.Contains(errS, "crh ") || !strings.Contains(errS, "go1") {
		t.Fatalf("-version output %q", errS)
	}
}
