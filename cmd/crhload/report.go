package main

import (
	"encoding/json"
	"fmt"
	"io"
	"math"
	"os"
	"path/filepath"
	"runtime"
	"sort"
	"time"
)

// endpointReport is one endpoint's measured outcome in the
// BENCH_serve record and the printed table.
type endpointReport struct {
	// Requests counts issued requests (including failures); Errors the
	// transport failures and non-2xx responses among them.
	Requests int64 `json:"requests"`
	Errors   int64 `json:"errors"` // see Requests
	// QPS is successful completions per second of run wall time.
	QPS float64 `json:"qps"`
	// Latency quantiles and extremes over successful requests, in
	// milliseconds (closed loop: measured from dispatch; open loop:
	// from scheduled start). Omitted when no request succeeded.
	P50Ms  *float64 `json:"p50_ms,omitempty"`
	P95Ms  *float64 `json:"p95_ms,omitempty"`  // see P50Ms
	P99Ms  *float64 `json:"p99_ms,omitempty"`  // see P50Ms
	MaxMs  *float64 `json:"max_ms,omitempty"`  // see P50Ms
	MeanMs *float64 `json:"mean_ms,omitempty"` // see P50Ms
}

// serveRecord is the BENCH_serve-<name>.json document: one committed,
// machine-diffable record per load profile. The schema is documented in
// docs/LOAD.md; like every BENCH record it pins go_version and
// gomaxprocs, and numbers are only comparable between records agreeing
// on mode, concurrency, rate, and mix.
type serveRecord struct {
	Name        string  `json:"name"`
	Profile     string  `json:"profile"`
	Mode        string  `json:"mode"` // "closed" or "open"
	Concurrency int     `json:"concurrency"`
	RateHz      float64 `json:"rate_hz,omitempty"` // open loop only
	DurationNs  int64   `json:"duration_ns"`
	Seed        int64   `json:"seed"`
	Mix         string  `json:"mix"`
	GoVersion   string  `json:"go_version"`
	GoMaxProcs  int     `json:"gomaxprocs"`

	// Endpoints breaks the run down per endpoint; Total aggregates all
	// traffic. ErrorRate is total errors over total requests.
	Endpoints map[string]endpointReport `json:"endpoints"`
	Total     endpointReport            `json:"total"` // see Endpoints
	ErrorRate float64                   `json:"error_rate"`

	// LateDispatches counts open-loop arrivals that found every inflight
	// slot busy (the schedule slipped); always 0 for closed runs.
	LateDispatches int64 `json:"late_dispatches"`

	// StageSharesPct is the server-side view of the same run: the
	// fraction of pipeline stage time per stage (percent, summing to
	// ~100) from the /v1/stats delta between run start and end. Empty
	// when the server's stats were unreadable.
	StageSharesPct map[string]float64 `json:"stage_shares_pct,omitempty"`

	// SLO is the pass/fail verdict against the -slo file, if one was
	// given.
	SLO *sloResult `json:"slo,omitempty"`
}

// buildEndpointReport folds one endpoint's metrics into report form.
func buildEndpointReport(m *epMetrics, wall time.Duration) endpointReport {
	rep := endpointReport{
		Requests: m.requests.Load(),
		Errors:   m.errors.Load(),
	}
	snap := m.hist.Snapshot()
	if wall > 0 {
		rep.QPS = float64(snap.Count) / wall.Seconds()
	}
	if snap.Count > 0 {
		q := func(v float64) *float64 { return &v }
		rep.P50Ms = q(snap.Quantile(0.50) * 1e3)
		rep.P95Ms = q(snap.Quantile(0.95) * 1e3)
		rep.P99Ms = q(snap.Quantile(0.99) * 1e3)
		rep.MaxMs = q(float64(m.maxNS.Load()) / 1e6)
		rep.MeanMs = q(snap.Sum / float64(snap.Count) * 1e3)
	}
	return rep
}

// buildRecord assembles the full run record.
func buildRecord(name, profile, mode string, conc int, rate float64, wall time.Duration, seed int64, m mix, rm *runMetrics, before, after *statsDoc) serveRecord {
	rec := serveRecord{
		Name:           name,
		Profile:        profile,
		Mode:           mode,
		Concurrency:    conc,
		RateHz:         rate,
		DurationNs:     wall.Nanoseconds(),
		Seed:           seed,
		Mix:            m.String(),
		GoVersion:      runtime.Version(),
		GoMaxProcs:     runtime.GOMAXPROCS(0),
		Endpoints:      make(map[string]endpointReport, numEndpoints),
		LateDispatches: rm.late.Load(),
	}
	var totalReq, totalErr, totalOK int64
	var sumSec float64
	var maxNS int64
	// Merge per-endpoint histograms for the total row: counts and sums
	// add; quantiles for the aggregate come from the merged buckets.
	var merged []int64
	var bounds []float64
	for i, em := range rm.eps {
		if em.requests.Load() == 0 && m[i] == 0 {
			continue
		}
		rep := buildEndpointReport(em, wall)
		rec.Endpoints[endpointNames[i]] = rep
		totalReq += rep.Requests
		totalErr += rep.Errors
		snap := em.hist.Snapshot()
		totalOK += snap.Count
		sumSec += snap.Sum
		if em.maxNS.Load() > maxNS {
			maxNS = em.maxNS.Load()
		}
		if merged == nil {
			merged = make([]int64, len(snap.Counts))
			bounds = snap.Bounds
		}
		for j, c := range snap.Counts {
			merged[j] += c
		}
	}
	rec.Total = endpointReport{Requests: totalReq, Errors: totalErr}
	if wall > 0 {
		rec.Total.QPS = float64(totalOK) / wall.Seconds()
	}
	if totalOK > 0 {
		q := func(v float64) *float64 { return &v }
		rec.Total.P50Ms = q(mergedQuantile(bounds, merged, totalOK, 0.50) * 1e3)
		rec.Total.P95Ms = q(mergedQuantile(bounds, merged, totalOK, 0.95) * 1e3)
		rec.Total.P99Ms = q(mergedQuantile(bounds, merged, totalOK, 0.99) * 1e3)
		rec.Total.MaxMs = q(float64(maxNS) / 1e6)
		rec.Total.MeanMs = q(sumSec / float64(totalOK) * 1e3)
	}
	if totalReq > 0 {
		rec.ErrorRate = float64(totalErr) / float64(totalReq)
	}
	rec.StageSharesPct = stageShares(before, after)
	return rec
}

// mergedQuantile estimates a quantile from merged histogram buckets by
// the same linear interpolation obs.HistogramSnapshot.Quantile uses.
func mergedQuantile(bounds []float64, counts []int64, total int64, q float64) float64 {
	rank := q * float64(total)
	var cum int64
	for i, c := range counts {
		cum += c
		if float64(cum) < rank {
			continue
		}
		if i == len(bounds) { // +Inf overflow bucket: clamp to last bound
			if len(bounds) == 0 {
				return 0
			}
			return bounds[len(bounds)-1]
		}
		lo := 0.0
		if i > 0 {
			lo = bounds[i-1]
		}
		frac := 1.0
		if c > 0 {
			frac = (rank - float64(cum-c)) / float64(c)
		}
		return lo + (bounds[i]-lo)*frac
	}
	return math.NaN() // total == 0; callers guard
}

// stageShares computes each pipeline stage's percentage of server-side
// stage time accrued during the run, from the /v1/stats documents
// sampled before and after. Either document missing yields nil.
func stageShares(before, after *statsDoc) map[string]float64 {
	if before == nil || after == nil || len(after.Stages) == 0 {
		return nil
	}
	deltas := make(map[string]float64, len(after.Stages))
	var total float64
	for name, a := range after.Stages {
		d := a.SumMs
		if b, ok := before.Stages[name]; ok {
			d -= b.SumMs
		}
		if d < 0 {
			d = 0 // server restarted mid-run; shares are best-effort
		}
		deltas[name] = d
		total += d
	}
	if total <= 0 {
		return nil
	}
	for name := range deltas {
		deltas[name] = deltas[name] / total * 100
	}
	return deltas
}

// printReport renders the human-readable run summary.
func printReport(w io.Writer, rec serveRecord) {
	fmt.Fprintf(w, "crhload: profile=%s mode=%s concurrency=%d duration=%s mix=%s seed=%d\n",
		rec.Profile, rec.Mode, rec.Concurrency, time.Duration(rec.DurationNs).Round(time.Millisecond), rec.Mix, rec.Seed)
	if rec.Mode == "open" {
		fmt.Fprintf(w, "crhload: target rate %.0f/s, %d late dispatches\n", rec.RateHz, rec.LateDispatches)
	}
	fmt.Fprintf(w, "%-12s %10s %8s %10s %9s %9s %9s %9s\n",
		"endpoint", "requests", "errors", "qps", "p50", "p95", "p99", "max")
	row := func(name string, rep endpointReport) {
		ms := func(p *float64) string {
			if p == nil {
				return "-"
			}
			return fmt.Sprintf("%.2fms", *p)
		}
		fmt.Fprintf(w, "%-12s %10d %8d %10.1f %9s %9s %9s %9s\n",
			name, rep.Requests, rep.Errors, rep.QPS, ms(rep.P50Ms), ms(rep.P95Ms), ms(rep.P99Ms), ms(rep.MaxMs))
	}
	for _, name := range endpointNames {
		if rep, ok := rec.Endpoints[name]; ok {
			row(name, rep)
		}
	}
	row("total", rec.Total)
	fmt.Fprintf(w, "error rate: %.4f\n", rec.ErrorRate)
	if len(rec.StageSharesPct) > 0 {
		names := make([]string, 0, len(rec.StageSharesPct))
		for name := range rec.StageSharesPct {
			names = append(names, name)
		}
		sort.Strings(names)
		fmt.Fprintf(w, "server stage shares:")
		for _, name := range names {
			fmt.Fprintf(w, " %s=%.1f%%", name, rec.StageSharesPct[name])
		}
		fmt.Fprintln(w)
	}
}

// writeRecord marshals the record to dir/BENCH_serve-<name>.json,
// following the repo's BENCH_<id>.json convention (docs/LOAD.md).
func writeRecord(dir string, rec serveRecord) (string, error) {
	buf, err := json.MarshalIndent(rec, "", "  ")
	if err != nil {
		return "", err
	}
	path := filepath.Join(dir, "BENCH_serve-"+rec.Name+".json")
	return path, os.WriteFile(path, append(buf, '\n'), 0o644)
}
