package main

import (
	"encoding/json"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"strings"
	"time"
)

// client wraps the HTTP conversation with one crhd instance. crhload
// talks to the server exclusively over its public API — it deliberately
// does not import internal/server (docs/LINT.md), so the few JSON
// shapes it reads are mirrored locally in statsDoc.
type client struct {
	base    string // e.g. http://127.0.0.1:8080
	dataset string
	hc      *http.Client
}

// newClient builds a client with a connection pool sized for conns
// concurrent requests against one host.
func newClient(base, dataset string, conns int) *client {
	if conns < 1 {
		conns = 1
	}
	tr := &http.Transport{
		MaxIdleConns:        conns,
		MaxIdleConnsPerHost: conns,
		IdleConnTimeout:     90 * time.Second,
	}
	return &client{
		base:    strings.TrimRight(base, "/"),
		dataset: dataset,
		hc:      &http.Client{Transport: tr, Timeout: 30 * time.Second},
	}
}

// reqSpec is one fully materialized request: the generator builds these
// on a single goroutine (keeping the run's randomness deterministic)
// and workers only perform the HTTP exchange.
type reqSpec struct {
	ep     int // endpoint index (epResolve, ...)
	method string
	path   string
	body   string
}

// do performs one request, drains the response, and reports any
// transport error or non-2xx status.
func (c *client) do(spec reqSpec) error {
	var body io.Reader
	if spec.body != "" {
		body = strings.NewReader(spec.body)
	}
	req, err := http.NewRequest(spec.method, c.base+spec.path, body)
	if err != nil {
		return err
	}
	if spec.body != "" {
		req.Header.Set("Content-Type", "application/json")
	}
	resp, err := c.hc.Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	// Drain so the connection is reusable; a short read surfaces on the
	// next request.
	_, _ = io.Copy(io.Discard, resp.Body)
	if resp.StatusCode < 200 || resp.StatusCode > 299 {
		return fmt.Errorf("%s %s: status %d", spec.method, spec.path, resp.StatusCode)
	}
	return nil
}

// seedTSV builds a deterministic starter dataset in the library's TSV
// codec: a continuous and a categorical property over objects×sources
// conflicting claims, enough that resolves do real solver work.
func seedTSV(rng *rand.Rand, objects, sources int) string {
	var sb strings.Builder
	sb.WriteString("P\ttemp\tcontinuous\n")
	sb.WriteString("P\tcond\tcategorical\n")
	conds := []string{"sunny", "rain", "snow", "fog"}
	for o := 0; o < objects; o++ {
		for s := 0; s < sources; s++ {
			fmt.Fprintf(&sb, "V\to%04d\ttemp\ts%02d\t%.3f\n", o, s, rng.NormFloat64()*8+20)
			if s%2 == 0 {
				fmt.Fprintf(&sb, "V\to%04d\tcond\ts%02d\t%s\n", o, s, conds[rng.Intn(len(conds))])
			}
		}
	}
	return sb.String()
}

// ensureDataset creates the target dataset with seeded observations; an
// already-existing dataset (409) is fine — the run then drives whatever
// is there, which is exactly what a repeat invocation wants.
func (c *client) ensureDataset(rng *rand.Rand, objects, sources int) error {
	resp, err := c.hc.Post(c.base+"/v1/datasets/"+c.dataset, "text/tab-separated-values",
		strings.NewReader(seedTSV(rng, objects, sources)))
	if err != nil {
		return fmt.Errorf("create dataset %q: %w", c.dataset, err)
	}
	defer resp.Body.Close()
	_, _ = io.Copy(io.Discard, resp.Body) // drain for connection reuse
	if resp.StatusCode != http.StatusCreated && resp.StatusCode != http.StatusConflict {
		return fmt.Errorf("create dataset %q: status %d", c.dataset, resp.StatusCode)
	}
	return nil
}

// statsDoc mirrors the slice of GET /v1/stats that crhload reads (the
// full document is defined by internal/server; see docs/SERVER.md).
// Unknown fields are ignored, so the mirror only pins what the report
// needs: per-stage totals and the cache counters.
type statsDoc struct {
	Cache struct {
		Hits   int64 `json:"hits"`
		Misses int64 `json:"misses"`
	} `json:"cache"`
	Stages map[string]struct {
		Count int64   `json:"count"`
		SumMs float64 `json:"sum_ms"`
	} `json:"stages"`
}

// fetchStats reads /v1/stats; callers treat errors as "server has no
// stats" and degrade (stage shares are then omitted from the report).
func (c *client) fetchStats() (*statsDoc, error) {
	resp, err := c.hc.Get(c.base + "/v1/stats")
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("/v1/stats: status %d", resp.StatusCode)
	}
	var doc statsDoc
	if err := json.NewDecoder(resp.Body).Decode(&doc); err != nil {
		return nil, fmt.Errorf("/v1/stats: %w", err)
	}
	return &doc, nil
}
