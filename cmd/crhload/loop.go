package main

import (
	"encoding/json"
	"fmt"
	"math/rand"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"github.com/crhkit/crh/internal/obs"
)

// newSeedRNG derives the dataset-seeding rng from the run seed,
// distinct from the per-worker request streams.
func newSeedRNG(seed int64) *rand.Rand {
	return rand.New(rand.NewSource(seed))
}

// Endpoint indices, in mix order.
const (
	epResolve = iota
	epIngest
	epIncremental
	numEndpoints
)

// endpointNames names the endpoints, indexed by the ep constants.
var endpointNames = [numEndpoints]string{"resolve", "ingest", "incremental"}

// mix holds the relative traffic weights per endpoint. Zero-weight
// endpoints are never issued.
type mix [numEndpoints]int

// parseMix reads "resolve=90,ingest=5,incremental=5". Every entry is
// optional; at least one weight must be positive.
func parseMix(s string) (mix, error) {
	var m mix
	for _, field := range strings.Split(s, ",") {
		name, val, ok := strings.Cut(strings.TrimSpace(field), "=")
		if !ok {
			return m, fmt.Errorf("mix entry %q is not name=weight", field)
		}
		w, err := strconv.Atoi(val)
		if err != nil || w < 0 {
			return m, fmt.Errorf("mix weight %q is not a non-negative integer", val)
		}
		idx := -1
		for i, n := range endpointNames {
			if n == name {
				idx = i
			}
		}
		if idx < 0 {
			return m, fmt.Errorf("unknown endpoint %q in mix (want resolve, ingest, or incremental)", name)
		}
		m[idx] = w
	}
	if m.total() == 0 {
		return m, fmt.Errorf("mix %q has no positive weight", s)
	}
	return m, nil
}

func (m mix) total() int {
	t := 0
	for _, w := range m {
		t += w
	}
	return t
}

// pick selects an endpoint index by weight.
func (m mix) pick(rng *rand.Rand) int {
	n := rng.Intn(m.total())
	for i, w := range m {
		if n < w {
			return i
		}
		n -= w
	}
	return numEndpoints - 1 // unreachable
}

func (m mix) String() string {
	parts := make([]string, 0, numEndpoints)
	for i, w := range m {
		if w > 0 {
			parts = append(parts, fmt.Sprintf("%s=%d", endpointNames[i], w))
		}
	}
	return strings.Join(parts, ",")
}

// resolveOptionVariants are the request bodies resolve traffic rotates
// through. Distinct options take distinct cache keys, so the rotation
// gives the server's result cache a realistic hit/miss blend instead of
// a single eternally-hot entry.
var resolveOptionVariants = []string{
	`{}`,
	`{"options":{"weights":"exp-sum"}}`,
	`{"options":{"confidence":true}}`,
	`{"options":{"continuous_loss":"squared","weights":"exp-sum"}}`,
	`{"method":"Median"}`,
}

// genRequest materializes the next request. It runs on the generator's
// single goroutine, so one rng stream drives the whole run and a given
// (seed, mix, duration) replays the same request sequence.
func genRequest(rng *rand.Rand, m mix, dataset string, objects, sources int) reqSpec {
	base := "/v1/datasets/" + dataset
	switch ep := m.pick(rng); ep {
	case epResolve:
		return reqSpec{ep: ep, method: "POST", path: base + "/resolve",
			body: resolveOptionVariants[rng.Intn(len(resolveOptionVariants))]}
	case epIngest:
		return reqSpec{ep: ep, method: "POST", path: base + "/observations",
			body: ingestBody(rng, objects, sources)}
	default:
		return reqSpec{ep: epIncremental, method: "GET", path: base + "/incremental"}
	}
}

// ingestBody builds one observation batch: a handful of conflicting
// claims over the seeded object/source pool. Each batch bumps the
// dataset version, which invalidates resolve cache entries — ingest
// traffic therefore also controls how often resolves do solver work.
func ingestBody(rng *rand.Rand, objects, sources int) string {
	type obsJSON struct {
		Source   string `json:"source"`
		Object   string `json:"object"`
		Property string `json:"property"`
		Value    any    `json:"value"`
	}
	conds := []string{"sunny", "rain", "snow", "fog"}
	batch := make([]obsJSON, 8)
	for i := range batch {
		o := obsJSON{
			Source: fmt.Sprintf("s%02d", rng.Intn(sources)),
			Object: fmt.Sprintf("o%04d", rng.Intn(objects)),
		}
		if rng.Intn(3) == 0 {
			o.Property = "cond"
			o.Value = conds[rng.Intn(len(conds))]
		} else {
			o.Property = "temp"
			o.Value = rng.NormFloat64()*8 + 20
		}
		batch[i] = o
	}
	raw, err := json.Marshal(map[string]any{"observations": batch})
	if err != nil {
		panic(err) // marshaling plain structs cannot fail
	}
	return string(raw)
}

// epMetrics accumulates one endpoint's results: a full-run histogram
// for the report, a sliding window for live progress lines, and atomic
// counters. Failed requests count toward requests/errors but not the
// latency distributions.
type epMetrics struct {
	hist     *obs.Histogram
	win      *obs.Window
	requests atomic.Int64
	errors   atomic.Int64
	maxNS    atomic.Int64
}

func (m *epMetrics) record(d time.Duration, err error) {
	m.requests.Add(1)
	if err != nil {
		m.errors.Add(1)
		return
	}
	m.hist.ObserveDuration(d)
	m.win.ObserveDuration(d)
	for {
		old := m.maxNS.Load()
		if int64(d) <= old || m.maxNS.CompareAndSwap(old, int64(d)) {
			return
		}
	}
}

// runMetrics is the full per-run measurement state.
type runMetrics struct {
	eps  [numEndpoints]*epMetrics
	late atomic.Int64 // open loop: dispatches delayed by the inflight cap
}

func newRunMetrics() *runMetrics {
	reg := obs.NewRegistry() // private; crhload reports, it doesn't serve
	rm := &runMetrics{}
	for i := range rm.eps {
		rm.eps[i] = &epMetrics{
			hist: reg.NewHistogram("crhload_latency_seconds_"+endpointNames[i], "client-observed latency", obs.DefBuckets),
			win:  obs.NewWindow(5*time.Second, 500*time.Millisecond, obs.DefBuckets),
		}
	}
	return rm
}

// runClosed drives the closed loop: conc workers, each issuing its next
// request as soon as the previous one completes. Each worker owns a
// deterministic rng stream derived from the run seed.
func runClosed(c *client, m mix, conc int, duration time.Duration, seed int64, objects, sources int, rm *runMetrics) time.Duration {
	start := time.Now()
	deadline := start.Add(duration)
	var wg sync.WaitGroup
	for w := 0; w < conc; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(seed*1_000_003 + int64(w)))
			for time.Now().Before(deadline) {
				spec := genRequest(rng, m, c.dataset, objects, sources)
				t0 := time.Now()
				err := c.do(spec)
				rm.eps[spec.ep].record(time.Since(t0), err)
			}
		}(w)
	}
	wg.Wait()
	return time.Since(start)
}

// runOpen drives the open loop: arrivals are scheduled at a fixed rate
// independent of completions, the honest model of external clients.
// Latency is measured from each request's *scheduled* start, so time a
// request spends waiting for one of the conc inflight slots counts
// against the server (no coordinated omission); such delayed dispatches
// are also counted in rm.late.
func runOpen(c *client, m mix, conc int, rate float64, duration time.Duration, seed int64, objects, sources int, rm *runMetrics) time.Duration {
	start := time.Now()
	deadline := start.Add(duration)
	interval := time.Duration(float64(time.Second) / rate)
	rng := rand.New(rand.NewSource(seed * 1_000_003)) // single generator stream
	sem := make(chan struct{}, conc)
	var wg sync.WaitGroup
	for n := int64(0); ; n++ {
		sched := start.Add(time.Duration(n) * interval)
		if !sched.Before(deadline) {
			break
		}
		if d := time.Until(sched); d > 0 {
			time.Sleep(d)
		}
		spec := genRequest(rng, m, c.dataset, objects, sources)
		select {
		case sem <- struct{}{}:
		default:
			// All inflight slots are busy: the schedule is slipping.
			rm.late.Add(1)
			sem <- struct{}{}
		}
		wg.Add(1)
		go func(spec reqSpec, sched time.Time) {
			defer wg.Done()
			defer func() { <-sem }()
			err := c.do(spec)
			rm.eps[spec.ep].record(time.Since(sched), err)
		}(spec, sched)
	}
	wg.Wait()
	return time.Since(start)
}

// progressLoop prints a one-line summary of the recent window per
// active endpoint every interval, until stop closes.
func progressLoop(rm *runMetrics, m mix, interval time.Duration, stop <-chan struct{}, printf func(format string, args ...any)) {
	tick := time.NewTicker(interval)
	defer tick.Stop()
	start := time.Now()
	for {
		select {
		case <-stop:
			return
		case <-tick.C:
			var sb strings.Builder
			fmt.Fprintf(&sb, "t=%s", time.Since(start).Round(time.Second))
			for i, em := range rm.eps {
				if m[i] == 0 {
					continue
				}
				snap := em.win.Snapshot()
				p95 := "-"
				if snap.Count > 0 {
					d := time.Duration(snap.Quantile(0.95) * float64(time.Second))
					p95 = d.Round(100 * time.Microsecond).String()
				}
				fmt.Fprintf(&sb, " | %s %.0f/s p95=%s errs=%d",
					endpointNames[i], snap.Rate, p95, em.errors.Load())
			}
			printf("%s\n", sb.String())
		}
	}
}
