// Command crhload load-tests a running crhd: it drives a mixed
// ingest/resolve/incremental workload at configurable concurrency,
// rate, duration, and traffic mix, then reports achieved throughput,
// latency quantiles per endpoint, error rate, and the server's own
// per-stage latency shares (from /v1/stats) — optionally judged against
// declared SLO targets.
//
// Usage:
//
//	crhload -addr http://127.0.0.1:8080 -profile resolve-heavy
//	crhload -profile ingest-heavy -json .        # write BENCH_serve-ingest-heavy.json
//	crhload -rate 200 -c 32 -duration 30s        # open loop: 200 arrivals/s
//	crhload -mix resolve=50,ingest=50 -slo slo.json
//	crhload -profile smoke -check                # CI gate (scripts/loadcheck.sh)
//
// Two loop disciplines:
//
//   - closed (default): -c workers each issue their next request as soon
//     as the previous completes; throughput floats with server speed.
//   - open (-rate > 0): arrivals are scheduled at the fixed rate
//     regardless of completions, and latency is measured from each
//     request's scheduled start, so queueing delay caused by a slow
//     server counts against it (no coordinated omission). -c bounds the
//     inflight requests; arrivals that find every slot busy are counted
//     as late dispatches.
//
// The run seeds (or reuses) a target dataset, and a fixed -seed replays
// the identical request sequence. Exit codes: 0 success, 1 runtime
// failure, 2 bad flags, 3 SLO violation or failed -check. See
// docs/LOAD.md for the SLO file format and the BENCH_serve schema.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"sort"
	"strings"
	"time"

	"github.com/crhkit/crh/internal/obs/buildinfo"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

// profile bundles a named default workload shape; explicit flags
// override individual fields.
type profile struct {
	mix      string
	conc     int
	rate     float64 // 0 = closed loop
	duration time.Duration
}

// profiles are the built-in workload shapes. resolve-heavy and
// ingest-heavy are the two committed BENCH_serve records; smoke is the
// short CI gate behind make loadcheck.
var profiles = map[string]profile{
	"resolve-heavy": {mix: "resolve=90,ingest=8,incremental=2", conc: 8, duration: 10 * time.Second},
	"ingest-heavy":  {mix: "resolve=20,ingest=75,incremental=5", conc: 8, duration: 10 * time.Second},
	"mixed":         {mix: "resolve=60,ingest=30,incremental=10", conc: 8, duration: 10 * time.Second},
	"smoke":         {mix: "resolve=70,ingest=25,incremental=5", conc: 4, duration: 2 * time.Second},
}

// profileNames lists the profiles in a stable order for -help and
// error text.
func profileNames() string {
	return "resolve-heavy, ingest-heavy, mixed, smoke"
}

// run is the testable entry point; it returns the process exit code.
func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("crhload", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		addr     = fs.String("addr", "http://127.0.0.1:8080", "base URL of the target crhd")
		prof     = fs.String("profile", "mixed", "workload profile: "+profileNames())
		mixFlag  = fs.String("mix", "", "traffic mix, e.g. resolve=90,ingest=5,incremental=5 (overrides the profile)")
		conc     = fs.Int("c", 0, "concurrency: closed-loop workers, or the open-loop inflight cap (overrides the profile)")
		rate     = fs.Float64("rate", 0, "open-loop arrival rate per second (0 = closed loop)")
		duration = fs.Duration("duration", 0, "run length (overrides the profile)")
		seed     = fs.Int64("seed", 1, "workload seed; a fixed seed replays the identical request sequence")
		dataset  = fs.String("dataset", "load", "target dataset name (created and seeded if absent)")
		objects  = fs.Int("objects", 200, "seeded dataset size: objects with conflicting claims")
		sources  = fs.Int("sources", 10, "seeded dataset size: claiming sources")
		sloPath  = fs.String("slo", "", "JSON file of SLO targets to judge the run against (docs/LOAD.md)")
		jsonDir  = fs.String("json", "", "write a BENCH_serve-<name>.json record to this directory")
		name     = fs.String("name", "", "record name (default: the profile name)")
		check    = fs.Bool("check", false, "smoke gate: fail unless the run had zero errors and the server's stage histograms populated")
		quiet    = fs.Bool("quiet", false, "suppress the periodic progress lines")
		version  = fs.Bool("version", false, "print version information and exit")
	)
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if *version {
		buildinfo.Print(stderr, "crhload")
		return 0
	}

	p, ok := profiles[*prof]
	if !ok {
		fmt.Fprintf(stderr, "crhload: unknown profile %q (want %s)\n", *prof, profileNames())
		return 2
	}
	if *mixFlag != "" {
		p.mix = *mixFlag
	}
	if *conc != 0 {
		p.conc = *conc
	}
	if *rate > 0 {
		p.rate = *rate
	}
	if *duration != 0 {
		p.duration = *duration
	}
	m, err := parseMix(p.mix)
	if err != nil {
		fmt.Fprintf(stderr, "crhload: %v\n", err)
		return 2
	}
	if p.conc < 1 || p.duration <= 0 || *rate < 0 || *objects < 1 || *sources < 1 {
		fmt.Fprintf(stderr, "crhload: concurrency, duration, rate, objects, and sources must be positive\n")
		return 2
	}
	var spec *sloSpec
	if *sloPath != "" {
		if spec, err = loadSLO(*sloPath); err != nil {
			fmt.Fprintf(stderr, "crhload: %v\n", err)
			return 2
		}
	}
	recName := *name
	if recName == "" {
		recName = *prof
	}

	c := newClient(*addr, *dataset, p.conc)
	seedRNG := newSeedRNG(*seed)
	if err := c.ensureDataset(seedRNG, *objects, *sources); err != nil {
		fmt.Fprintf(stderr, "crhload: %v\n", err)
		return 1
	}

	before, err := c.fetchStats()
	if err != nil {
		fmt.Fprintf(stderr, "crhload: /v1/stats unavailable before run (%v); stage shares will be omitted\n", err)
	}

	rm := newRunMetrics()
	stop := make(chan struct{})
	if !*quiet && p.duration > 5*time.Second {
		go progressLoop(rm, m, 5*time.Second, stop, func(format string, args ...any) {
			fmt.Fprintf(stderr, "crhload: "+format, args...)
		})
	}
	mode := "closed"
	var wall time.Duration
	if p.rate > 0 {
		mode = "open"
		wall = runOpen(c, m, p.conc, p.rate, p.duration, *seed, *objects, *sources, rm)
	} else {
		wall = runClosed(c, m, p.conc, p.duration, *seed, *objects, *sources, rm)
	}
	close(stop)

	after, err := c.fetchStats()
	if err != nil {
		fmt.Fprintf(stderr, "crhload: /v1/stats unavailable after run (%v); stage shares omitted\n", err)
	}

	rec := buildRecord(recName, *prof, mode, p.conc, p.rate, wall, *seed, m, rm, before, after)
	if spec != nil {
		res := evaluateSLO(spec, &rec)
		rec.SLO = &res
	}
	printReport(stdout, rec)

	if *jsonDir != "" {
		path, err := writeRecord(*jsonDir, rec)
		if err != nil {
			fmt.Fprintf(stderr, "crhload: %v\n", err)
			return 1
		}
		fmt.Fprintf(stderr, "crhload: wrote %s\n", path)
	}

	code := 0
	if rec.SLO != nil && !rec.SLO.Pass {
		for _, v := range rec.SLO.Violations {
			fmt.Fprintf(stderr, "crhload: SLO violation: %s\n", v)
		}
		code = 3
	}
	if *check {
		if msgs := checkSmoke(&rec, after); len(msgs) > 0 {
			for _, msg := range msgs {
				fmt.Fprintf(stderr, "crhload: check failed: %s\n", msg)
			}
			code = 3
		} else {
			fmt.Fprintln(stderr, "crhload: check passed: zero errors, stage histograms populated")
		}
	}
	return code
}

// checkSmoke is the -check gate used by scripts/loadcheck.sh: the run
// must have issued traffic on every endpoint in the mix with zero
// errors, and the server's stage histograms must show the resolve
// pipeline actually executed (at least four stages with observations).
func checkSmoke(rec *serveRecord, after *statsDoc) []string {
	var msgs []string
	if rec.Total.Requests == 0 {
		msgs = append(msgs, "no requests issued")
	}
	if rec.Total.Errors > 0 {
		msgs = append(msgs, fmt.Sprintf("%d request errors", rec.Total.Errors))
	}
	if after == nil {
		return append(msgs, "/v1/stats unreadable; cannot verify stage histograms")
	}
	populated := 0
	var stagesSeen []string
	for name, st := range after.Stages {
		if st.Count > 0 {
			populated++
			stagesSeen = append(stagesSeen, name)
		}
	}
	if populated < 4 {
		sort.Strings(stagesSeen)
		msgs = append(msgs, fmt.Sprintf("only %d stage histograms populated (%s), want ≥ 4",
			populated, strings.Join(stagesSeen, ",")))
	}
	return msgs
}
