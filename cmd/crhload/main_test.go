package main

import (
	"bytes"
	"encoding/json"
	"fmt"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"sync/atomic"
	"testing"
	"time"
)

func TestParseMix(t *testing.T) {
	m, err := parseMix("resolve=90,ingest=5,incremental=5")
	if err != nil {
		t.Fatal(err)
	}
	if m[epResolve] != 90 || m[epIngest] != 5 || m[epIncremental] != 5 {
		t.Fatalf("mix = %v", m)
	}
	if got := m.String(); got != "resolve=90,ingest=5,incremental=5" {
		t.Errorf("String() = %q", got)
	}
	if _, err := parseMix("resolve=90,bogus=1"); err == nil {
		t.Error("unknown endpoint accepted")
	}
	if _, err := parseMix("resolve=0,ingest=0"); err == nil {
		t.Error("all-zero mix accepted")
	}
	if _, err := parseMix("resolve"); err == nil {
		t.Error("missing weight accepted")
	}
	if _, err := parseMix("resolve=-1"); err == nil {
		t.Error("negative weight accepted")
	}
	// Partial mixes are fine.
	m, err = parseMix("ingest=1")
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(1))
	for i := 0; i < 50; i++ {
		if got := m.pick(rng); got != epIngest {
			t.Fatalf("pick on single-endpoint mix = %d", got)
		}
	}
}

// TestGenRequestDeterministic pins the replay contract: the same seed
// yields the identical request sequence.
func TestGenRequestDeterministic(t *testing.T) {
	m, _ := parseMix("resolve=60,ingest=30,incremental=10")
	gen := func() []reqSpec {
		rng := rand.New(rand.NewSource(42))
		out := make([]reqSpec, 200)
		for i := range out {
			out[i] = genRequest(rng, m, "d", 50, 5)
		}
		return out
	}
	a, b := gen(), gen()
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("request %d diverged: %+v vs %+v", i, a[i], b[i])
		}
	}
	var sawResolve, sawIngest, sawInc bool
	for _, r := range a {
		switch r.ep {
		case epResolve:
			sawResolve = true
		case epIngest:
			sawIngest = true
		case epIncremental:
			sawInc = true
		}
	}
	if !sawResolve || !sawIngest || !sawInc {
		t.Fatalf("200 draws missed an endpoint: resolve=%v ingest=%v incremental=%v", sawResolve, sawIngest, sawInc)
	}
}

func TestMergedQuantile(t *testing.T) {
	bounds := []float64{1, 2, 4}
	// 10 obs in (0,1], 10 in (1,2], none beyond.
	counts := []int64{10, 10, 0, 0}
	if q := mergedQuantile(bounds, counts, 20, 0.25); q <= 0 || q > 1 {
		t.Errorf("p25 = %v, want in (0,1]", q)
	}
	if q := mergedQuantile(bounds, counts, 20, 0.95); q <= 1 || q > 2 {
		t.Errorf("p95 = %v, want in (1,2]", q)
	}
	// Overflow bucket clamps to the last bound.
	if q := mergedQuantile(bounds, []int64{0, 0, 0, 5}, 5, 0.5); q != 4 {
		t.Errorf("overflow quantile = %v, want 4 (clamped)", q)
	}
}

func TestEvaluateSLO(t *testing.T) {
	q := func(v float64) *float64 { return &v }
	rec := &serveRecord{
		ErrorRate: 0.02,
		Endpoints: map[string]endpointReport{
			"resolve": {Requests: 100, QPS: 50, P50Ms: q(10), P95Ms: q(40), P99Ms: q(90)},
		},
	}
	spec := &sloSpec{
		MaxErrorRate: q(0.05),
		Endpoints: map[string]sloTargets{
			"resolve": {P95Ms: q(50), MinQPS: q(10)},
		},
	}
	if res := evaluateSLO(spec, rec); !res.Pass {
		t.Fatalf("expected pass, got %+v", res)
	}
	// Tighten until it fails on each axis.
	spec.Endpoints["resolve"] = sloTargets{P95Ms: q(30)}
	if res := evaluateSLO(spec, rec); res.Pass || len(res.Violations) != 1 {
		t.Fatalf("p95 breach not caught: %+v", res)
	}
	spec.Endpoints["resolve"] = sloTargets{MinQPS: q(100)}
	if res := evaluateSLO(spec, rec); res.Pass {
		t.Fatalf("qps floor breach not caught: %+v", res)
	}
	spec.Endpoints["resolve"] = sloTargets{}
	spec.MaxErrorRate = q(0.01)
	if res := evaluateSLO(spec, rec); res.Pass {
		t.Fatalf("error-rate breach not caught: %+v", res)
	}
	// A latency target on an endpoint with no successes must fail, not
	// pass vacuously.
	spec.MaxErrorRate = nil
	spec.Endpoints["ingest"] = sloTargets{P99Ms: q(10)}
	if res := evaluateSLO(spec, rec); res.Pass {
		t.Fatalf("dead endpoint passed its SLO: %+v", res)
	}
}

// stubServer implements just enough of the crhd API for crhload:
// create, ingest, resolve, incremental, and /v1/stats with populated
// stage histograms.
func stubServer(t *testing.T) (*httptest.Server, *atomic.Int64) {
	t.Helper()
	var resolves atomic.Int64
	stages := []string{"decode", "cache", "coalesce", "queue", "solve", "encode"}
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/datasets/{name}", func(w http.ResponseWriter, r *http.Request) {
		w.WriteHeader(http.StatusCreated)
	})
	mux.HandleFunc("POST /v1/datasets/{name}/observations", func(w http.ResponseWriter, r *http.Request) {
		fmt.Fprint(w, `{"accepted":8}`)
	})
	mux.HandleFunc("POST /v1/datasets/{name}/resolve", func(w http.ResponseWriter, r *http.Request) {
		resolves.Add(1)
		fmt.Fprint(w, `{"truths":[]}`)
	})
	mux.HandleFunc("GET /v1/datasets/{name}/incremental", func(w http.ResponseWriter, r *http.Request) {
		fmt.Fprint(w, `{"chunks":1}`)
	})
	mux.HandleFunc("GET /v1/stats", func(w http.ResponseWriter, r *http.Request) {
		doc := map[string]any{"stages": map[string]any{}}
		n := resolves.Load()
		for _, st := range stages {
			doc["stages"].(map[string]any)[st] = map[string]any{"count": n, "sum_ms": float64(n) * 2}
		}
		if err := json.NewEncoder(w).Encode(doc); err != nil {
			t.Error(err)
		}
	})
	ts := httptest.NewServer(mux)
	t.Cleanup(ts.Close)
	return ts, &resolves
}

// TestRunClosedEndToEnd drives a short closed-loop run against the stub
// and checks the report, record file, and -check gate.
func TestRunClosedEndToEnd(t *testing.T) {
	ts, resolves := stubServer(t)
	dir := t.TempDir()
	var stdout, stderr bytes.Buffer
	code := run([]string{
		"-addr", ts.URL, "-profile", "smoke", "-duration", "300ms",
		"-c", "2", "-seed", "7", "-json", dir, "-check",
	}, &stdout, &stderr)
	if code != 0 {
		t.Fatalf("exit code %d\nstdout:\n%s\nstderr:\n%s", code, stdout.String(), stderr.String())
	}
	if resolves.Load() == 0 {
		t.Fatal("stub saw no resolves")
	}
	out := stdout.String()
	for _, want := range []string{"profile=smoke", "resolve", "ingest", "total", "error rate: 0.0000", "server stage shares:"} {
		if !strings.Contains(out, want) {
			t.Errorf("report missing %q:\n%s", want, out)
		}
	}
	if !strings.Contains(stderr.String(), "check passed") {
		t.Errorf("check did not pass:\n%s", stderr.String())
	}

	raw, err := os.ReadFile(filepath.Join(dir, "BENCH_serve-smoke.json"))
	if err != nil {
		t.Fatal(err)
	}
	var rec serveRecord
	if err := json.Unmarshal(raw, &rec); err != nil {
		t.Fatal(err)
	}
	if rec.Mode != "closed" || rec.Profile != "smoke" || rec.Seed != 7 || rec.Concurrency != 2 {
		t.Fatalf("record header: %+v", rec)
	}
	if rec.Total.Requests == 0 || rec.Total.QPS <= 0 || rec.Total.P50Ms == nil {
		t.Fatalf("record totals: %+v", rec.Total)
	}
	if rec.ErrorRate != 0 {
		t.Fatalf("error rate = %v", rec.ErrorRate)
	}
	if len(rec.StageSharesPct) != 6 {
		t.Fatalf("stage shares = %v", rec.StageSharesPct)
	}
	if rec.GoVersion == "" || rec.GoMaxProcs < 1 {
		t.Fatalf("environment pins missing: %+v", rec)
	}
}

// TestRunOpenLoop exercises the open-loop scheduler: the achieved rate
// tracks the target and the record carries the mode.
func TestRunOpenLoop(t *testing.T) {
	ts, _ := stubServer(t)
	dir := t.TempDir()
	var stdout, stderr bytes.Buffer
	code := run([]string{
		"-addr", ts.URL, "-mix", "resolve=1", "-rate", "200", "-c", "16",
		"-duration", "500ms", "-json", dir, "-name", "openloop",
	}, &stdout, &stderr)
	if code != 0 {
		t.Fatalf("exit code %d\nstderr:\n%s", code, stderr.String())
	}
	raw, err := os.ReadFile(filepath.Join(dir, "BENCH_serve-openloop.json"))
	if err != nil {
		t.Fatal(err)
	}
	var rec serveRecord
	if err := json.Unmarshal(raw, &rec); err != nil {
		t.Fatal(err)
	}
	if rec.Mode != "open" || rec.RateHz != 200 {
		t.Fatalf("record mode/rate: %+v", rec)
	}
	// 200/s for 500ms schedules ~100 arrivals; allow wide slack for slow
	// CI but require the loop actually paced.
	if rec.Total.Requests < 50 || rec.Total.Requests > 150 {
		t.Fatalf("open loop issued %d requests, want ≈100", rec.Total.Requests)
	}
}

// TestRunSLOViolation checks the distinct exit code and the embedded
// verdict when declared targets fail.
func TestRunSLOViolation(t *testing.T) {
	ts, _ := stubServer(t)
	dir := t.TempDir()
	slo := filepath.Join(dir, "slo.json")
	// An impossible throughput floor: any run violates it.
	if err := os.WriteFile(slo, []byte(`{"endpoints":{"resolve":{"min_qps":1e12}}}`), 0o644); err != nil {
		t.Fatal(err)
	}
	var stdout, stderr bytes.Buffer
	code := run([]string{
		"-addr", ts.URL, "-mix", "resolve=1", "-duration", "200ms", "-c", "2",
		"-slo", slo, "-json", dir, "-name", "slofail",
	}, &stdout, &stderr)
	if code != 3 {
		t.Fatalf("exit code = %d, want 3\nstderr:\n%s", code, stderr.String())
	}
	if !strings.Contains(stderr.String(), "SLO violation") {
		t.Errorf("stderr missing violation:\n%s", stderr.String())
	}
	raw, err := os.ReadFile(filepath.Join(dir, "BENCH_serve-slofail.json"))
	if err != nil {
		t.Fatal(err)
	}
	var rec serveRecord
	if err := json.Unmarshal(raw, &rec); err != nil {
		t.Fatal(err)
	}
	if rec.SLO == nil || rec.SLO.Pass || len(rec.SLO.Violations) == 0 {
		t.Fatalf("record SLO verdict: %+v", rec.SLO)
	}
}

// TestRunCheckFailsOnErrors points crhload at a server that errors on
// resolve: -check must fail with exit 3.
func TestRunCheckFailsOnErrors(t *testing.T) {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/datasets/{name}", func(w http.ResponseWriter, r *http.Request) {
		w.WriteHeader(http.StatusCreated)
	})
	mux.HandleFunc("/", func(w http.ResponseWriter, r *http.Request) {
		http.Error(w, "boom", http.StatusInternalServerError)
	})
	ts := httptest.NewServer(mux)
	defer ts.Close()
	var stdout, stderr bytes.Buffer
	code := run([]string{
		"-addr", ts.URL, "-mix", "resolve=1", "-duration", "200ms", "-c", "2", "-check",
	}, &stdout, &stderr)
	if code != 3 {
		t.Fatalf("exit code = %d, want 3\nstderr:\n%s", code, stderr.String())
	}
	if !strings.Contains(stderr.String(), "check failed") {
		t.Errorf("stderr missing check failure:\n%s", stderr.String())
	}
}

func TestRunBadFlags(t *testing.T) {
	for _, args := range [][]string{
		{"-profile", "nope"},
		{"-mix", "bogus=1"},
		{"-duration", "-1s", "-profile", "smoke"},
		{"-slo", "/nonexistent/slo.json"},
	} {
		var stdout, stderr bytes.Buffer
		if code := run(args, &stdout, &stderr); code != 2 {
			t.Errorf("args %v: exit %d, want 2 (stderr: %s)", args, code, stderr.String())
		}
	}
}

// TestIngestBodyShape decodes a generated batch and checks the
// observation fields the server requires.
func TestIngestBodyShape(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	var doc struct {
		Observations []struct {
			Source   string `json:"source"`
			Object   string `json:"object"`
			Property string `json:"property"`
			Value    any    `json:"value"`
		} `json:"observations"`
	}
	if err := json.Unmarshal([]byte(ingestBody(rng, 50, 5)), &doc); err != nil {
		t.Fatal(err)
	}
	if len(doc.Observations) == 0 {
		t.Fatal("empty batch")
	}
	for i, o := range doc.Observations {
		if o.Source == "" || o.Object == "" || o.Value == nil {
			t.Fatalf("observation %d incomplete: %+v", i, o)
		}
		if o.Property != "temp" && o.Property != "cond" {
			t.Fatalf("observation %d property %q", i, o.Property)
		}
	}
}

// TestProgressLoopOutput checks the progress line formatting without
// waiting for real intervals.
func TestProgressLoopOutput(t *testing.T) {
	rm := newRunMetrics()
	m, _ := parseMix("resolve=1")
	rm.eps[epResolve].record(2*time.Millisecond, nil)
	var buf bytes.Buffer
	stop := make(chan struct{})
	done := make(chan struct{})
	go func() {
		defer close(done)
		progressLoop(rm, m, 10*time.Millisecond, stop, func(format string, args ...any) {
			fmt.Fprintf(&buf, format, args...)
		})
	}()
	time.Sleep(35 * time.Millisecond)
	close(stop)
	<-done
	out := buf.String()
	if !strings.Contains(out, "resolve") || !strings.Contains(out, "p95=") {
		t.Fatalf("progress output: %q", out)
	}
}

func TestSeedTSVDeterministic(t *testing.T) {
	a := seedTSV(rand.New(rand.NewSource(5)), 10, 3)
	b := seedTSV(rand.New(rand.NewSource(5)), 10, 3)
	if a != b {
		t.Fatal("seedTSV not deterministic for a fixed seed")
	}
	if !strings.HasPrefix(a, "P\ttemp\tcontinuous\nP\tcond\tcategorical\n") {
		t.Fatalf("header: %q", a[:40])
	}
	if strings.Count(a, "\n") < 10*3 {
		t.Fatalf("suspiciously small seed dataset:\n%s", a)
	}
}
