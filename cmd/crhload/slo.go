package main

import (
	"encoding/json"
	"fmt"
	"os"
	"sort"
)

// sloSpec is the -slo file format (docs/LOAD.md): latency/throughput
// targets per endpoint plus a global error-rate ceiling. Every field is
// optional; only declared targets are checked.
type sloSpec struct {
	// MaxErrorRate caps total errors over total requests, in [0,1].
	MaxErrorRate *float64 `json:"max_error_rate"`
	// Endpoints maps endpoint name (resolve, ingest, incremental) to its
	// targets: latency ceilings in milliseconds and a throughput floor.
	Endpoints map[string]sloTargets `json:"endpoints"`
}

// sloTargets is one endpoint's declared service-level objectives.
type sloTargets struct {
	P50Ms  *float64 `json:"p50_ms"`
	P95Ms  *float64 `json:"p95_ms"`  // see P50Ms
	P99Ms  *float64 `json:"p99_ms"`  // see P50Ms
	MinQPS *float64 `json:"min_qps"` // successful completions per second, at least
}

// sloResult is the verdict embedded in the run record: Pass is true
// when every declared target held; Violations lists each failure in
// human-readable form.
type sloResult struct {
	Pass       bool     `json:"pass"`
	Violations []string `json:"violations,omitempty"`
}

// loadSLO reads and validates an SLO file.
func loadSLO(path string) (*sloSpec, error) {
	raw, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var spec sloSpec
	if err := json.Unmarshal(raw, &spec); err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	if spec.MaxErrorRate != nil && (*spec.MaxErrorRate < 0 || *spec.MaxErrorRate > 1) {
		return nil, fmt.Errorf("%s: max_error_rate %v outside [0,1]", path, *spec.MaxErrorRate)
	}
	for name := range spec.Endpoints {
		known := false
		for _, n := range endpointNames {
			if n == name {
				known = true
			}
		}
		if !known {
			return nil, fmt.Errorf("%s: unknown endpoint %q (want resolve, ingest, or incremental)", path, name)
		}
	}
	return &spec, nil
}

// evaluateSLO checks the run record against the spec. A latency target
// on an endpoint that served no successful request is a violation — a
// dead endpoint must not pass its SLO vacuously.
func evaluateSLO(spec *sloSpec, rec *serveRecord) sloResult {
	res := sloResult{Pass: true}
	fail := func(format string, args ...any) {
		res.Pass = false
		res.Violations = append(res.Violations, fmt.Sprintf(format, args...))
	}
	if spec.MaxErrorRate != nil && rec.ErrorRate > *spec.MaxErrorRate {
		fail("error rate %.4f exceeds max %.4f", rec.ErrorRate, *spec.MaxErrorRate)
	}
	names := make([]string, 0, len(spec.Endpoints))
	for name := range spec.Endpoints {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		t := spec.Endpoints[name]
		rep, ok := rec.Endpoints[name]
		if !ok || rep.P50Ms == nil {
			if t.P50Ms != nil || t.P95Ms != nil || t.P99Ms != nil || t.MinQPS != nil {
				fail("%s: no successful requests to judge against its SLO", name)
			}
			continue
		}
		check := func(label string, got *float64, limit *float64) {
			if limit != nil && got != nil && *got > *limit {
				fail("%s: %s %.2fms exceeds %.2fms", name, label, *got, *limit)
			}
		}
		check("p50", rep.P50Ms, t.P50Ms)
		check("p95", rep.P95Ms, t.P95Ms)
		check("p99", rep.P99Ms, t.P99Ms)
		if t.MinQPS != nil && rep.QPS < *t.MinQPS {
			fail("%s: qps %.1f below floor %.1f", name, rep.QPS, *t.MinQPS)
		}
	}
	return res
}
