// Command crhlint runs the repository's project-specific static
// analysis suite (internal/lint): the numeric, determinism, layering,
// dependency, and documentation invariants that go vet and the race
// detector do not check.
//
// Usage:
//
//	crhlint [-list] [-json] [-dir d] [packages]
//
// Packages default to ./... resolved against -dir (default "."), which
// must lie inside a Go module. Patterns follow the go tool's shape:
// ./... walks everything, sub/... walks a subtree, anything else names
// one directory. Diagnostics print one per line as
//
//	file:line: [analyzer] message
//
// and the exit status is 1 when any finding survives suppression, 2 on
// usage or load errors, 0 otherwise. Findings are suppressed in place
// with //lint:ignore <analyzer> <reason>; see docs/LINT.md.
//
// -json replaces the text lines with one JSON array of every finding —
// including suppressed ones, flagged with their directive's reason — so
// CI can archive the full record. The exit status still counts only
// unsuppressed findings.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"

	"github.com/crhkit/crh/internal/lint"
	"github.com/crhkit/crh/internal/obs/buildinfo"
)

// jsonFinding is the -json wire shape of one diagnostic.
type jsonFinding struct {
	File     string `json:"file"`
	Line     int    `json:"line"`
	Analyzer string `json:"analyzer"`
	Message  string `json:"message"`
	// Suppressed marks a finding silenced by a //lint:ignore directive;
	// Reason carries the directive's justification (omitted otherwise).
	Suppressed bool   `json:"suppressed"`
	Reason     string `json:"reason,omitempty"` // see Suppressed
}

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

// run is the testable entry point; it returns the process exit code.
func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("crhlint", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		list    = fs.Bool("list", false, "print the registered analyzers with their one-line docs and exit")
		jsonOut = fs.Bool("json", false, "emit all findings (including suppressed ones) as a JSON array instead of text")
		dir     = fs.String("dir", ".", "directory to resolve package patterns against (must be inside a module)")
		version = fs.Bool("version", false, "print version information and exit")
	)
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if *version {
		buildinfo.Print(stderr, "crhlint")
		return 0
	}
	if *list {
		for _, a := range lint.Analyzers() {
			fmt.Fprintf(stdout, "%-12s %s\n", a.Name, a.Doc)
		}
		return 0
	}
	pkgs, err := lint.Load(*dir, fs.Args())
	if err != nil {
		fmt.Fprintf(stderr, "crhlint: %v\n", err)
		return 2
	}
	if *jsonOut {
		return runJSON(pkgs, stdout, stderr)
	}
	diags := lint.Run(pkgs, lint.Analyzers())
	for _, d := range diags {
		fmt.Fprintln(stdout, d)
	}
	if len(diags) > 0 {
		fmt.Fprintf(stderr, "crhlint: %d finding(s)\n", len(diags))
		return 1
	}
	return 0
}

// runJSON prints every diagnostic — suppressed ones included — as one
// indented JSON array. The exit status mirrors the text mode's: only
// unsuppressed findings fail the run.
func runJSON(pkgs []*lint.Package, stdout, stderr io.Writer) int {
	diags := lint.RunAll(pkgs, lint.Analyzers())
	findings := make([]jsonFinding, len(diags))
	unsuppressed := 0
	for i, d := range diags {
		findings[i] = jsonFinding{
			File:       d.Pos.Filename,
			Line:       d.Pos.Line,
			Analyzer:   d.Analyzer,
			Message:    d.Message,
			Suppressed: d.Suppressed,
			Reason:     d.Reason,
		}
		if !d.Suppressed {
			unsuppressed++
		}
	}
	enc := json.NewEncoder(stdout)
	enc.SetIndent("", "  ")
	if err := enc.Encode(findings); err != nil {
		fmt.Fprintf(stderr, "crhlint: %v\n", err)
		return 2
	}
	if unsuppressed > 0 {
		fmt.Fprintf(stderr, "crhlint: %d finding(s)\n", unsuppressed)
		return 1
	}
	return 0
}
