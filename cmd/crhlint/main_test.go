package main

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"regexp"
	"strings"
	"testing"
)

// writeModule lays out a throwaway module under a temp dir.
func writeModule(t *testing.T, files map[string]string) string {
	t.Helper()
	dir := t.TempDir()
	for name, src := range files {
		path := filepath.Join(dir, name)
		if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, []byte(src), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	return dir
}

// TestSmokeFindings drives the real entry point against a module with a
// known floatcmp violation: exit status 1, one diagnostic per line in
// the file:line: [analyzer] message shape, and a finding count on
// stderr.
func TestSmokeFindings(t *testing.T) {
	dir := writeModule(t, map[string]string{
		"go.mod": "module example.com/smoke\n\ngo 1.22\n",
		"eq.go": `// Package smoke is a crhlint smoke-test fixture.
package smoke

// Same reports whether a equals b.
func Same(a, b float64) bool { return a == b }
`,
	})
	var stdout, stderr bytes.Buffer
	if code := run([]string{"-dir", dir, "./..."}, &stdout, &stderr); code != 1 {
		t.Fatalf("exit code = %d, want 1\nstdout:\n%s\nstderr:\n%s", code, &stdout, &stderr)
	}
	lines := strings.Split(strings.TrimRight(stdout.String(), "\n"), "\n")
	if len(lines) != 1 {
		t.Fatalf("stdout = %d diagnostics, want 1:\n%s", len(lines), &stdout)
	}
	re := regexp.MustCompile(`^.*eq\.go:5: \[floatcmp\] floating-point == comparison`)
	if !re.MatchString(lines[0]) {
		t.Errorf("diagnostic %q does not match %v", lines[0], re)
	}
	if !strings.Contains(stderr.String(), "crhlint: 1 finding(s)") {
		t.Errorf("stderr %q lacks the finding count", stderr.String())
	}
}

// TestSmokeClean exits 0 with no output on a module with nothing to
// report.
func TestSmokeClean(t *testing.T) {
	dir := writeModule(t, map[string]string{
		"go.mod": "module example.com/clean\n\ngo 1.22\n",
		"ok.go": `// Package clean is a crhlint smoke-test fixture.
package clean

// Half halves x.
func Half(x float64) float64 { return x / 2 }
`,
	})
	var stdout, stderr bytes.Buffer
	if code := run([]string{"-dir", dir, "./..."}, &stdout, &stderr); code != 0 {
		t.Fatalf("exit code = %d, want 0\nstdout:\n%s\nstderr:\n%s", code, &stdout, &stderr)
	}
	if stdout.Len() != 0 || stderr.Len() != 0 {
		t.Errorf("clean run produced output\nstdout:\n%s\nstderr:\n%s", &stdout, &stderr)
	}
}

// TestSmokeList pins -list: every registered analyzer appears with a
// doc line, and nothing is loaded or linted.
func TestSmokeList(t *testing.T) {
	var stdout, stderr bytes.Buffer
	if code := run([]string{"-list"}, &stdout, &stderr); code != 0 {
		t.Fatalf("exit code = %d, want 0\nstderr:\n%s", code, &stderr)
	}
	out := stdout.String()
	for _, name := range []string{"floatcmp", "globalrand", "layering", "stdlibonly", "exporteddoc", "maporder", "lockguard", "errflow", "hotpath", "directive"} {
		re := regexp.MustCompile(`(?m)^` + name + `\s+\S`)
		if !re.MatchString(out) {
			t.Errorf("-list output lacks analyzer %q with a doc:\n%s", name, out)
		}
	}
}

// TestSmokeJSON pins the -json contract: an array of
// {file, line, analyzer, message, suppressed[, reason]} records that
// includes suppressed findings, while the exit status counts only the
// unsuppressed ones.
func TestSmokeJSON(t *testing.T) {
	dir := writeModule(t, map[string]string{
		"go.mod": "module example.com/jsonsmoke\n\ngo 1.22\n",
		"eq.go": `// Package jsonsmoke is a crhlint smoke-test fixture.
package jsonsmoke

// Same reports whether a equals b.
func Same(a, b float64) bool { return a == b }

// Near reports whether a and b agree to within tolerance semantics the
// caller pinned elsewhere.
func Near(a, b float64) bool {
	//lint:ignore floatcmp exact equality is the documented contract here
	return a == b
}
`,
	})
	var stdout, stderr bytes.Buffer
	if code := run([]string{"-json", "-dir", dir, "./..."}, &stdout, &stderr); code != 1 {
		t.Fatalf("exit code = %d, want 1\nstdout:\n%s\nstderr:\n%s", code, &stdout, &stderr)
	}
	var findings []struct {
		File       string `json:"file"`
		Line       int    `json:"line"`
		Analyzer   string `json:"analyzer"`
		Message    string `json:"message"`
		Suppressed bool   `json:"suppressed"`
		Reason     string `json:"reason"`
	}
	if err := json.Unmarshal(stdout.Bytes(), &findings); err != nil {
		t.Fatalf("stdout is not a JSON array: %v\n%s", err, &stdout)
	}
	if len(findings) != 2 {
		t.Fatalf("%d findings, want 2 (one live, one suppressed):\n%s", len(findings), &stdout)
	}
	live, supp := findings[0], findings[1]
	if live.Suppressed || live.Line != 5 || live.Analyzer != "floatcmp" ||
		!strings.HasSuffix(live.File, "eq.go") || !strings.Contains(live.Message, "floating-point") {
		t.Errorf("live finding wrong: %+v", live)
	}
	if !supp.Suppressed || supp.Reason != "exact equality is the documented contract here" {
		t.Errorf("suppressed finding wrong: %+v", supp)
	}
	if !strings.Contains(stderr.String(), "crhlint: 1 finding(s)") {
		t.Errorf("stderr %q should count only the unsuppressed finding", stderr.String())
	}
}

// TestSmokeJSONClean pins that a clean run emits an empty array (not
// null) and exits 0.
func TestSmokeJSONClean(t *testing.T) {
	dir := writeModule(t, map[string]string{
		"go.mod": "module example.com/jsonclean\n\ngo 1.22\n",
		"ok.go": `// Package jsonclean is a crhlint smoke-test fixture.
package jsonclean

// Half halves x.
func Half(x float64) float64 { return x / 2 }
`,
	})
	var stdout, stderr bytes.Buffer
	if code := run([]string{"-json", "-dir", dir, "./..."}, &stdout, &stderr); code != 0 {
		t.Fatalf("exit code = %d, want 0\nstderr:\n%s", code, &stderr)
	}
	if got := strings.TrimSpace(stdout.String()); got != "[]" {
		t.Errorf("clean -json output = %q, want []", got)
	}
}

// TestSmokeBadUsage exits 2 on a bad flag and on a directory outside
// any module.
func TestSmokeBadUsage(t *testing.T) {
	var stdout, stderr bytes.Buffer
	if code := run([]string{"-nope"}, &stdout, &stderr); code != 2 {
		t.Errorf("bad flag: exit code = %d, want 2", code)
	}
	stdout.Reset()
	stderr.Reset()
	if code := run([]string{"-dir", t.TempDir()}, &stdout, &stderr); code != 2 {
		t.Errorf("no module: exit code = %d, want 2", code)
	}
	if !strings.Contains(stderr.String(), "crhlint:") {
		t.Errorf("load error not reported on stderr: %q", stderr.String())
	}
}

// TestVersionFlag checks -version prints build identity and exits 0.
func TestVersionFlag(t *testing.T) {
	var out, errB bytes.Buffer
	if code := run([]string{"-version"}, &out, &errB); code != 0 {
		t.Fatalf("-version exit %d", code)
	}
	if !strings.Contains(errB.String(), "crhlint ") {
		t.Fatalf("-version output %q", errB.String())
	}
}
