// Command crhd serves truth discovery over HTTP: a concurrent, versioned
// dataset registry with live ingest, request coalescing, and an LRU
// result cache, backed by the CRH library.
//
// Usage:
//
//	crhd [flags] [name=dataset.tsv ...]
//
// Positional arguments preload datasets from TSV files (the library's
// codec format) under the given names. The server then accepts:
//
//	GET    /healthz                          liveness
//	GET    /v1/healthz                       readiness: dataset count + build info
//	GET    /metrics                          Prometheus text exposition
//	GET    /v1/stats                         counters, cache hit rate, latency histogram
//	GET    /v1/methods                       registered resolution methods
//	GET    /v1/datasets                      list datasets
//	POST   /v1/datasets/{name}               create (body: TSV, may be empty)
//	GET    /v1/datasets/{name}               dataset info
//	DELETE /v1/datasets/{name}               delete
//	POST   /v1/datasets/{name}/observations  live ingest (JSON batch)
//	POST   /v1/datasets/{name}/resolve       run CRH or a baseline
//	GET    /v1/datasets/{name}/incremental   warm I-CRH truths/weights
//
// See docs/SERVER.md for the JSON shapes.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"io"
	"log/slog"
	"net"
	"net/http"
	"net/http/pprof"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"github.com/crhkit/crh/internal/obs/buildinfo"
	"github.com/crhkit/crh/internal/server"
)

func main() {
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	os.Exit(run(ctx, os.Args[1:], os.Stderr, nil))
}

// run is the testable entry point. When ready is non-nil the bound
// listener address is sent on it once the server is accepting; the server
// runs until ctx is cancelled. Returns the process exit code.
func run(ctx context.Context, args []string, stderr io.Writer, ready chan<- string) int {
	fs := flag.NewFlagSet("crhd", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		addr      = fs.String("addr", ":8080", "listen address (host:port; port 0 picks an ephemeral port)")
		cacheSize = fs.Int("cache", 128, "resolve result cache capacity (entries)")
		decay     = fs.Float64("decay", 1, "I-CRH decay rate α in [0,1] for live-ingest incremental state")
		workers   = fs.Int("solver-workers", 0, "solver worker pool shared by all resolves (0 = GOMAXPROCS); results are identical at any setting")
		dataDir   = fs.String("data-dir", "", "durable ingest directory (WAL + snapshots per dataset); empty = memory-only (docs/DURABILITY.md)")
		fsync     = fs.String("fsync", "batch", "WAL fsync policy: batch (every ingest), interval, or off")
		fsyncIvl  = fs.Duration("fsync-interval", 100*time.Millisecond, "minimum spacing between fsyncs under -fsync=interval")
		snapEvery = fs.Int("snapshot-every", 128, "write a snapshot (and compact the WAL) every N ingested batches")
		pprofOn   = fs.Bool("pprof", false, "expose net/http/pprof profiling handlers under /debug/pprof/")
		slow      = fs.Duration("slow", 500*time.Millisecond, "log requests at or above this latency at WARN level (0 disables)")
		stageLog  = fs.Int("stage-log", 0, "log every Nth successful resolve's per-stage latency breakdown (0 disables)")
		version   = fs.Bool("version", false, "print version information and exit")
	)
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if *version {
		buildinfo.Print(stderr, "crhd")
		return 0
	}
	if *decay < 0 || *decay > 1 {
		fmt.Fprintf(stderr, "crhd: -decay must be in [0,1], got %g\n", *decay)
		return 2
	}

	logger := slog.New(slog.NewJSONHandler(stderr, nil))

	srv, err := server.New(server.Config{
		CacheCapacity: *cacheSize,
		Decay:         *decay,
		SolverWorkers: *workers,
		DataDir:       *dataDir,
		Fsync:         *fsync,
		FsyncInterval: *fsyncIvl,
		SnapshotEvery: *snapEvery,
		StageLogEvery: *stageLog,
		StageLog:      stageLogFunc(logger),
	})
	if err != nil {
		fmt.Fprintf(stderr, "crhd: %v\n", err)
		return 1
	}
	defer func() {
		if err := srv.Close(); err != nil {
			fmt.Fprintf(stderr, "crhd: shutdown: %v\n", err)
		}
	}()
	if *dataDir != "" {
		fmt.Fprintf(stderr, "crhd: durable ingest in %s (fsync=%s), %d dataset(s) recovered\n",
			*dataDir, *fsync, srv.Registry().Count())
	}

	for _, arg := range fs.Args() {
		name, path, ok := strings.Cut(arg, "=")
		if !ok {
			fmt.Fprintf(stderr, "crhd: preload argument %q is not name=path.tsv\n", arg)
			return 2
		}
		if _, exists := srv.Registry().Get(name); exists {
			// Recovered from -data-dir; the durable state wins so a
			// restart with the same command line keeps ingested batches.
			fmt.Fprintf(stderr, "crhd: dataset %q recovered from data dir, skipping preload of %s\n", name, path)
			continue
		}
		f, err := os.Open(path)
		if err != nil {
			fmt.Fprintf(stderr, "crhd: %v\n", err)
			return 1
		}
		_, err = srv.Registry().Create(name, f)
		//lint:ignore errflow f was opened read-only; close cannot lose buffered writes
		_ = f.Close()
		if err != nil {
			fmt.Fprintf(stderr, "crhd: preload %s: %v\n", name, err)
			return 1
		}
		fmt.Fprintf(stderr, "crhd: preloaded dataset %q from %s\n", name, path)
	}

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		fmt.Fprintf(stderr, "crhd: %v\n", err)
		return 1
	}
	fmt.Fprintf(stderr, "crhd: listening on %s\n", ln.Addr())
	if ready != nil {
		ready <- ln.Addr().String()
	}

	var handler http.Handler = srv.Handler()
	if *pprofOn {
		mux := http.NewServeMux()
		mux.Handle("/", handler)
		mux.HandleFunc("/debug/pprof/", pprof.Index)
		mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
		mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
		mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
		mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
		handler = mux
		fmt.Fprintln(stderr, "crhd: pprof enabled under /debug/pprof/")
	}
	handler = requestLog(logger, *slow, handler)

	hs := &http.Server{Handler: handler}
	errc := make(chan error, 1)
	go func() { errc <- hs.Serve(ln) }()

	select {
	case <-ctx.Done():
		shutCtx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		if err := hs.Shutdown(shutCtx); err != nil {
			fmt.Fprintf(stderr, "crhd: shutdown: %v\n", err)
			return 1
		}
		fmt.Fprintln(stderr, "crhd: shut down")
		return 0
	case err := <-errc:
		if err != nil && !errors.Is(err, http.ErrServerClosed) {
			fmt.Fprintf(stderr, "crhd: %v\n", err)
			return 1
		}
		return 0
	}
}
