package main

import (
	"bytes"
	"context"
	"encoding/json"
	"io"
	"math"
	"net/http"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"

	crh "github.com/crhkit/crh"
)

const smokeTSV = `P	temp	continuous
P	cond	categorical
V	o1	temp	s1	10
V	o1	temp	s2	12
V	o1	cond	s1	sunny
V	o1	cond	s2	sunny
V	o2	temp	s1	20
V	o2	temp	s2	26
V	o2	cond	s1	rain
V	o2	cond	s2	snow
`

// TestSmoke boots crhd on an ephemeral port, preloads a dataset from
// disk, ingests a batch over HTTP, resolves, and checks the truths match
// a direct crh.Run on the equivalent full dataset.
func TestSmoke(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "weather.tsv")
	if err := os.WriteFile(path, []byte(smokeTSV), 0o644); err != nil {
		t.Fatal(err)
	}

	ctx, cancel := context.WithCancel(context.Background())
	ready := make(chan string, 1)
	done := make(chan int, 1)
	var stderr bytes.Buffer
	go func() {
		done <- run(ctx, []string{"-addr", "127.0.0.1:0", "weather=" + path}, &stderr, ready)
	}()
	var base string
	select {
	case addr := <-ready:
		base = "http://" + addr
	case code := <-done:
		t.Fatalf("server exited early with code %d: %s", code, stderr.String())
	case <-time.After(10 * time.Second):
		t.Fatal("server did not become ready")
	}

	get := func(path string, out any) int {
		resp, err := http.Get(base + path)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		if out != nil {
			if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
				t.Fatal(err)
			}
		} else {
			io.Copy(io.Discard, resp.Body)
		}
		return resp.StatusCode
	}
	post := func(path, body string, out any) int {
		resp, err := http.Post(base+path, "application/json", strings.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		if out != nil {
			if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
				t.Fatal(err)
			}
		} else {
			io.Copy(io.Discard, resp.Body)
		}
		return resp.StatusCode
	}

	if code := get("/healthz", nil); code != 200 {
		t.Fatalf("healthz: %d", code)
	}

	// The preloaded dataset is present.
	var info struct {
		Version      int64 `json:"version"`
		Observations int   `json:"observations"`
	}
	if code := get("/v1/datasets/weather", &info); code != 200 || info.Version != 1 || info.Observations != 8 {
		t.Fatalf("preloaded info: %+v", info)
	}

	// Live ingest.
	ingest := `{"observations":[
		{"source":"s1","object":"o3","property":"temp","value":30},
		{"source":"s2","object":"o3","property":"temp","value":34},
		{"source":"s2","object":"o3","property":"cond","value":"fog"}
	]}`
	if code := post("/v1/datasets/weather/observations", ingest, nil); code != 200 {
		t.Fatalf("ingest: %d", code)
	}

	// Resolve over HTTP.
	var env struct {
		Version int64 `json:"version"`
		Truths  []struct {
			Object   string `json:"object"`
			Property string `json:"property"`
			Value    any    `json:"value"`
		} `json:"truths"`
		Weights map[string]float64 `json:"weights"`
	}
	if code := post("/v1/datasets/weather/resolve", `{}`, &env); code != 200 {
		t.Fatalf("resolve: %d", code)
	}
	if env.Version != 2 {
		t.Fatalf("resolve version = %d, want 2", env.Version)
	}

	// Direct run on the equivalent full dataset.
	b := crh.NewBuilder()
	type obs struct {
		src, obj, prop string
		f              float64
		cat            string
		isCat          bool
	}
	all := []obs{
		{"s1", "o1", "temp", 10, "", false},
		{"s2", "o1", "temp", 12, "", false},
		{"s1", "o1", "cond", 0, "sunny", true},
		{"s2", "o1", "cond", 0, "sunny", true},
		{"s1", "o2", "temp", 20, "", false},
		{"s2", "o2", "temp", 26, "", false},
		{"s1", "o2", "cond", 0, "rain", true},
		{"s2", "o2", "cond", 0, "snow", true},
		{"s1", "o3", "temp", 30, "", false},
		{"s2", "o3", "temp", 34, "", false},
		{"s2", "o3", "cond", 0, "fog", true},
	}
	for _, o := range all {
		var err error
		if o.isCat {
			err = b.ObserveCat(o.src, o.obj, o.prop, o.cat)
		} else {
			err = b.ObserveFloat(o.src, o.obj, o.prop, o.f)
		}
		if err != nil {
			t.Fatal(err)
		}
	}
	d := b.Build()
	want, err := crh.Run(d, crh.Options{})
	if err != nil {
		t.Fatal(err)
	}

	got := map[string]any{}
	for _, tr := range env.Truths {
		got[tr.Object+"/"+tr.Property] = tr.Value
	}
	count := 0
	for i := 0; i < d.NumObjects(); i++ {
		for m := 0; m < d.NumProps(); m++ {
			v, ok := want.Truths.GetAt(i, m)
			if !ok {
				continue
			}
			count++
			p := d.Prop(m)
			key := d.ObjectName(i) + "/" + p.Name
			if p.Type == crh.Categorical {
				if got[key] != p.CatName(int(v.C)) {
					t.Errorf("truth %s = %v, want %s", key, got[key], p.CatName(int(v.C)))
				}
			} else if f, ok := got[key].(float64); !ok || math.Abs(f-v.F) > 1e-12 {
				t.Errorf("truth %s = %v, want %v", key, got[key], v.F)
			}
		}
	}
	if len(env.Truths) != count {
		t.Errorf("server returned %d truths, direct run has %d", len(env.Truths), count)
	}
	for k := 0; k < d.NumSources(); k++ {
		name := d.SourceName(k)
		if w, ok := env.Weights[name]; !ok || math.Abs(w-want.Weights[k]) > 1e-12 {
			t.Errorf("weight %s = %v, want %v", name, env.Weights[name], want.Weights[k])
		}
	}

	// /v1/stats is serving and counted the resolve.
	var stats struct {
		Requests struct {
			Resolves int64 `json:"resolves"`
		} `json:"requests"`
	}
	if code := get("/v1/stats", &stats); code != 200 || stats.Requests.Resolves != 1 {
		t.Fatalf("stats: %+v", stats)
	}

	// Graceful shutdown.
	cancel()
	select {
	case code := <-done:
		if code != 0 {
			t.Fatalf("exit code %d: %s", code, stderr.String())
		}
	case <-time.After(10 * time.Second):
		t.Fatal("server did not shut down")
	}
}

// TestDurableRestart boots crhd with -data-dir, ingests, shuts down
// gracefully, boots a second crhd with the same command line, and checks
// the dataset came back at its pre-shutdown version with the ingested
// data (the preload arg is skipped in favor of the recovered state).
func TestDurableRestart(t *testing.T) {
	dir := t.TempDir()
	tsvPath := filepath.Join(dir, "weather.tsv")
	if err := os.WriteFile(tsvPath, []byte(smokeTSV), 0o644); err != nil {
		t.Fatal(err)
	}
	dataDir := filepath.Join(dir, "data")
	args := []string{"-addr", "127.0.0.1:0", "-data-dir", dataDir, "-fsync", "interval", "weather=" + tsvPath}

	boot := func() (base string, cancel context.CancelFunc, done chan int, stderr *syncBuffer) {
		ctx, stop := context.WithCancel(context.Background())
		ready := make(chan string, 1)
		done = make(chan int, 1)
		stderr = &syncBuffer{}
		go func() { done <- run(ctx, args, stderr, ready) }()
		select {
		case addr := <-ready:
			return "http://" + addr, stop, done, stderr
		case code := <-done:
			t.Fatalf("server exited early with code %d: %s", code, stderr.String())
		case <-time.After(10 * time.Second):
			t.Fatal("server did not become ready")
		}
		panic("unreachable")
	}
	shutdown := func(cancel context.CancelFunc, done chan int, stderr *syncBuffer) {
		cancel()
		select {
		case code := <-done:
			if code != 0 {
				t.Fatalf("exit code %d: %s", code, stderr.String())
			}
		case <-time.After(10 * time.Second):
			t.Fatal("server did not shut down")
		}
	}

	base, cancel, done, stderr := boot()
	ingest := `{"observations":[{"source":"s1","object":"o9","property":"temp","value":42}]}`
	resp, err := http.Post(base+"/v1/datasets/weather/observations", "application/json", strings.NewReader(ingest))
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	_ = resp.Body.Close()
	if resp.StatusCode != 200 {
		t.Fatalf("ingest: %d", resp.StatusCode)
	}
	shutdown(cancel, done, stderr)

	base, cancel, done, stderr = boot()
	defer shutdown(cancel, done, stderr)
	var info struct {
		Version      int64 `json:"version"`
		Observations int   `json:"observations"`
	}
	resp, err = http.Get(base + "/v1/datasets/weather")
	if err != nil {
		t.Fatal(err)
	}
	if err := json.NewDecoder(resp.Body).Decode(&info); err != nil {
		t.Fatal(err)
	}
	_ = resp.Body.Close()
	if info.Version != 2 || info.Observations != 9 {
		t.Fatalf("recovered dataset: %+v (stderr: %s)", info, stderr.String())
	}
	if !strings.Contains(stderr.String(), "recovered from data dir, skipping preload") {
		t.Errorf("preload of a recovered dataset was not skipped: %s", stderr.String())
	}
}

// TestBadFlags covers the CLI error paths.
func TestBadFlags(t *testing.T) {
	ctx := context.Background()
	var stderr bytes.Buffer
	if code := run(ctx, []string{"-decay", "1.5"}, &stderr, nil); code != 2 {
		t.Fatalf("bad decay: exit %d", code)
	}
	if code := run(ctx, []string{"no-equals-sign"}, &stderr, nil); code != 2 {
		t.Fatalf("bad preload arg: exit %d", code)
	}
	if code := run(ctx, []string{"x=/does/not/exist.tsv"}, &stderr, nil); code != 1 {
		t.Fatalf("missing preload file: exit %d", code)
	}
	if code := run(ctx, []string{"-addr", "256.256.256.256:99999"}, &stderr, nil); code != 1 {
		t.Fatalf("bad addr: exit %d", code)
	}
}

// TestVersionFlag checks -version prints build identity and exits 0.
func TestVersionFlag(t *testing.T) {
	var stderr bytes.Buffer
	if code := run(context.Background(), []string{"-version"}, &stderr, nil); code != 0 {
		t.Fatalf("-version exit %d", code)
	}
	if !strings.Contains(stderr.String(), "crhd ") || !strings.Contains(stderr.String(), "go1") {
		t.Fatalf("-version output %q", stderr.String())
	}
}

// TestPprofAndRequestLog boots crhd with -pprof and verifies the
// profiling endpoints are mounted and that API requests are logged as
// structured JSON records with request IDs.
func TestPprofAndRequestLog(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	ready := make(chan string, 1)
	done := make(chan int, 1)
	var stderr syncBuffer
	go func() {
		done <- run(ctx, []string{"-addr", "127.0.0.1:0", "-pprof"}, &stderr, ready)
	}()
	var base string
	select {
	case addr := <-ready:
		base = "http://" + addr
	case code := <-done:
		t.Fatalf("server exited early with code %d: %s", code, stderr.String())
	case <-time.After(10 * time.Second):
		t.Fatal("server did not become ready")
	}

	for _, path := range []string{"/debug/pprof/", "/debug/pprof/cmdline", "/v1/datasets", "/metrics", "/healthz"} {
		resp, err := http.Get(base + path)
		if err != nil {
			t.Fatal(err)
		}
		io.Copy(io.Discard, resp.Body)
		_ = resp.Body.Close()
		if resp.StatusCode != 200 {
			t.Errorf("GET %s: %d", path, resp.StatusCode)
		}
	}

	cancel()
	select {
	case <-done:
	case <-time.After(10 * time.Second):
		t.Fatal("server did not shut down")
	}

	// The API and pprof requests are logged with ids; /metrics and
	// /healthz are exempt from logging.
	logged := stderr.String()
	for _, want := range []string{`"msg":"request"`, `"req_id":`, `"path":"/v1/datasets"`, `"path":"/debug/pprof/"`, `"status":200`} {
		if !strings.Contains(logged, want) {
			t.Errorf("request log missing %q in:\n%s", want, logged)
		}
	}
	for _, absent := range []string{`"path":"/metrics"`, `"path":"/healthz"`} {
		if strings.Contains(logged, absent) {
			t.Errorf("request log should not contain %q", absent)
		}
	}
}

// TestStageLogFlag boots crhd with -stage-log 1 and checks every
// successful resolve emits a "resolve stages" record with per-stage
// millisecond attributes — solve on the miss, no solve on the hit.
func TestStageLogFlag(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "weather.tsv")
	if err := os.WriteFile(path, []byte(smokeTSV), 0o644); err != nil {
		t.Fatal(err)
	}

	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	ready := make(chan string, 1)
	done := make(chan int, 1)
	var stderr syncBuffer
	go func() {
		done <- run(ctx, []string{"-addr", "127.0.0.1:0", "-stage-log", "1", "weather=" + path}, &stderr, ready)
	}()
	var base string
	select {
	case addr := <-ready:
		base = "http://" + addr
	case code := <-done:
		t.Fatalf("server exited early with code %d: %s", code, stderr.String())
	case <-time.After(10 * time.Second):
		t.Fatal("server did not become ready")
	}

	for i := 0; i < 2; i++ { // miss, then cache hit
		resp, err := http.Post(base+"/v1/datasets/weather/resolve", "application/json", strings.NewReader(`{}`))
		if err != nil {
			t.Fatal(err)
		}
		io.Copy(io.Discard, resp.Body)
		_ = resp.Body.Close()
		if resp.StatusCode != 200 {
			t.Fatalf("resolve %d: %d", i, resp.StatusCode)
		}
	}

	cancel()
	select {
	case <-done:
	case <-time.After(10 * time.Second):
		t.Fatal("server did not shut down")
	}

	logged := stderr.String()
	if got := strings.Count(logged, `"msg":"resolve stages"`); got != 2 {
		t.Fatalf("stage log records = %d, want 2 in:\n%s", got, logged)
	}
	for _, want := range []string{`"dataset":"weather"`, `"solve":`, `"cached":true`, `"cached":false`, `"decode":`, `"total":`} {
		if !strings.Contains(logged, want) {
			t.Errorf("stage log missing %q in:\n%s", want, logged)
		}
	}
	// The cached resolve's record must not carry a solve stage: exactly
	// one record (the miss) mentions solve.
	if got := strings.Count(logged, `"solve":`); got != 1 {
		t.Errorf("records with solve stage = %d, want 1 in:\n%s", got, logged)
	}
}

// syncBuffer is a bytes.Buffer safe for concurrent writers — the server
// goroutine logs to it while the test reads it.
type syncBuffer struct {
	mu sync.Mutex
	b  bytes.Buffer
}

func (s *syncBuffer) Write(p []byte) (int, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.b.Write(p)
}

func (s *syncBuffer) String() string {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.b.String()
}
