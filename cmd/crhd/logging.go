package main

import (
	"log/slog"
	"net/http"
	"sync/atomic"
	"time"

	"github.com/crhkit/crh/internal/server"
)

// statusWriter captures the status code and body size written by the
// wrapped handler so the request log can report them.
type statusWriter struct {
	http.ResponseWriter
	status int
	bytes  int64
}

func (w *statusWriter) WriteHeader(code int) {
	if w.status == 0 {
		w.status = code
	}
	w.ResponseWriter.WriteHeader(code)
}

func (w *statusWriter) Write(p []byte) (int, error) {
	if w.status == 0 {
		w.status = http.StatusOK
	}
	n, err := w.ResponseWriter.Write(p)
	w.bytes += int64(n)
	return n, err
}

// stageLogFunc adapts the structured logger to the server's sampled
// per-request stage callback (-stage-log). Each sampled resolve emits
// one INFO record with the dataset, serving flags, total latency, and a
// millisecond attribute per pipeline stage the request traversed.
func stageLogFunc(log *slog.Logger) func(server.StageTimings) {
	return func(rec server.StageTimings) {
		attrs := []any{
			slog.String("dataset", rec.Dataset),
			slog.Bool("cached", rec.Cached),
			slog.Bool("coalesced", rec.Coalesced),
			slog.Duration("total", rec.Total),
		}
		for i, name := range server.StageNames {
			if d := rec.Stages[i]; d > 0 {
				attrs = append(attrs, slog.Duration(name, d))
			}
		}
		log.Info("resolve stages", attrs...)
	}
}

// requestLog wraps next with structured per-request logging: every
// request gets a monotonically increasing id and an INFO record with
// method, path, status, size, and latency; requests slower than `slow`
// are raised to WARN so they stand out without a query language.
// Requests for /metrics and /healthz are not logged (scrapers and
// load-balancer probes would drown the log).
func requestLog(log *slog.Logger, slow time.Duration, next http.Handler) http.Handler {
	var nextID atomic.Int64
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Path == "/metrics" || r.URL.Path == "/healthz" {
			next.ServeHTTP(w, r)
			return
		}
		id := nextID.Add(1)
		sw := &statusWriter{ResponseWriter: w}
		t0 := time.Now()
		next.ServeHTTP(sw, r)
		elapsed := time.Since(t0)
		if sw.status == 0 {
			sw.status = http.StatusOK
		}
		attrs := []any{
			slog.Int64("req_id", id),
			slog.String("method", r.Method),
			slog.String("path", r.URL.Path),
			slog.Int("status", sw.status),
			slog.Int64("bytes", sw.bytes),
			slog.Duration("elapsed", elapsed),
		}
		if slow > 0 && elapsed >= slow {
			log.Warn("slow request", append(attrs, slog.Duration("slow_threshold", slow))...)
			return
		}
		log.Info("request", attrs...)
	})
}
