// Command crhbench regenerates the paper's tables and figures.
//
// Usage:
//
//	crhbench -exp table2           # one experiment, small scale
//	crhbench -exp all -scale full  # everything at the paper's scale
//	crhbench -list                 # enumerate experiment IDs
//
// Small scale shrinks the large simulations so every experiment finishes
// in seconds; full scale uses the paper's data set sizes (Tables 1 and 3)
// and can take a long time for the baseline-heavy tables.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"github.com/crhkit/crh/internal/experiments"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

// run is the testable entry point; it returns the process exit code.
func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("crhbench", flag.ContinueOnError)
	fs.SetOutput(stderr)
	exp := fs.String("exp", "all", "experiment ID (e.g. table2, fig5) or 'all'")
	scale := fs.String("scale", "small", "data scale: small | full")
	list := fs.Bool("list", false, "list experiment IDs and exit")
	if err := fs.Parse(args); err != nil {
		return 2
	}

	if *list {
		reg := experiments.Registry()
		for _, id := range experiments.IDs() {
			fmt.Fprintf(stdout, "%-8s %s\n", id, reg[id].Caption)
		}
		return 0
	}

	var s experiments.Scale
	switch *scale {
	case "small":
		s = experiments.ScaleSmall
	case "full":
		s = experiments.ScaleFull
	default:
		fmt.Fprintf(stderr, "crhbench: unknown scale %q (want small or full)\n", *scale)
		return 2
	}

	if *exp == "all" {
		experiments.RunAll(s, stdout)
		return 0
	}
	e, ok := experiments.Registry()[*exp]
	if !ok {
		fmt.Fprintf(stderr, "crhbench: unknown experiment %q; -list shows the options\n", *exp)
		return 2
	}
	e.Run(s).Render(stdout)
	return 0
}
