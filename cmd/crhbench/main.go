// Command crhbench regenerates the paper's tables and figures.
//
// Usage:
//
//	crhbench -exp table2           # one experiment, small scale
//	crhbench -exp all -scale full  # everything at the paper's scale
//	crhbench -exp all -json .      # also write BENCH_<id>.json per experiment
//	crhbench -list                 # enumerate experiment IDs
//
// Small scale shrinks the large simulations so every experiment finishes
// in seconds; full scale uses the paper's data set sizes (Tables 1 and 3)
// and can take a long time for the baseline-heavy tables.
//
// With -json, each experiment additionally writes a machine-readable
// BENCH_<id>.json record (wall time, ns/op, allocations, table row
// counts) to the given directory, so CI can diff benchmark numbers
// across commits. The schema is documented in docs/OBSERVABILITY.md.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"runtime"
	"time"

	"github.com/crhkit/crh/internal/experiments"
	"github.com/crhkit/crh/internal/obs/buildinfo"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

// benchRecord is the BENCH_<id>.json document written for each
// experiment under -json.
type benchRecord struct {
	Name    string `json:"name"`
	Caption string `json:"caption"`
	Scale   string `json:"scale"`
	// Runs is the number of times the experiment executed; WallNs the
	// total wall time and NsPerOp the per-run average.
	Runs    int   `json:"runs"`
	WallNs  int64 `json:"wall_ns"`
	NsPerOp int64 `json:"ns_per_op"`
	// AllocBytes/AllocObjects are heap-allocation deltas over the runs
	// (runtime.MemStats TotalAlloc/Mallocs), an upper bound that includes
	// any concurrent allocation.
	AllocBytes   uint64 `json:"alloc_bytes"`
	AllocObjects uint64 `json:"alloc_objects"`
	// TableRows counts the data rows across the report's tables — a
	// cheap fingerprint that the experiment produced full output.
	TableRows int    `json:"table_rows"`
	GoVersion string `json:"go_version"`
}

// runMeasured executes one experiment, rendering its report to stdout
// and returning the filled benchmark record.
func runMeasured(e experiments.Experiment, s experiments.Scale, scaleName string, stdout io.Writer) benchRecord {
	var before, after runtime.MemStats
	runtime.ReadMemStats(&before)
	t0 := time.Now()
	rep := e.Run(s)
	wall := time.Since(t0)
	runtime.ReadMemStats(&after)
	rep.Render(stdout)
	rows := 0
	for _, t := range rep.Tables {
		rows += len(t.Rows)
	}
	return benchRecord{
		Name:         e.ID,
		Caption:      e.Caption,
		Scale:        scaleName,
		Runs:         1,
		WallNs:       wall.Nanoseconds(),
		NsPerOp:      wall.Nanoseconds(),
		AllocBytes:   after.TotalAlloc - before.TotalAlloc,
		AllocObjects: after.Mallocs - before.Mallocs,
		TableRows:    rows,
		GoVersion:    runtime.Version(),
	}
}

// run is the testable entry point; it returns the process exit code.
func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("crhbench", flag.ContinueOnError)
	fs.SetOutput(stderr)
	exp := fs.String("exp", "all", "experiment ID (e.g. table2, fig5) or 'all'")
	scale := fs.String("scale", "small", "data scale: small | full")
	list := fs.Bool("list", false, "list experiment IDs and exit")
	jsonDir := fs.String("json", "", "write a BENCH_<id>.json record per experiment to this directory")
	version := fs.Bool("version", false, "print version information and exit")
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if *version {
		buildinfo.Print(stderr, "crhbench")
		return 0
	}

	if *list {
		reg := experiments.Registry()
		for _, id := range experiments.IDs() {
			fmt.Fprintf(stdout, "%-8s %s\n", id, reg[id].Caption)
		}
		return 0
	}

	var s experiments.Scale
	switch *scale {
	case "small":
		s = experiments.ScaleSmall
	case "full":
		s = experiments.ScaleFull
	default:
		fmt.Fprintf(stderr, "crhbench: unknown scale %q (want small or full)\n", *scale)
		return 2
	}

	reg := experiments.Registry()
	var ids []string
	if *exp == "all" {
		ids = experiments.IDs()
	} else {
		if _, ok := reg[*exp]; !ok {
			fmt.Fprintf(stderr, "crhbench: unknown experiment %q; -list shows the options\n", *exp)
			return 2
		}
		ids = []string{*exp}
	}

	for _, id := range ids {
		if *exp == "all" {
			fmt.Fprintf(stdout, ">>> running %s ...\n", id)
		}
		rec := runMeasured(reg[id], s, *scale, stdout)
		if *jsonDir == "" {
			continue
		}
		path := filepath.Join(*jsonDir, "BENCH_"+id+".json")
		buf, err := json.MarshalIndent(rec, "", "  ")
		if err != nil {
			fmt.Fprintf(stderr, "crhbench: %v\n", err)
			return 1
		}
		if err := os.WriteFile(path, append(buf, '\n'), 0o644); err != nil {
			fmt.Fprintf(stderr, "crhbench: %v\n", err)
			return 1
		}
		fmt.Fprintf(stderr, "crhbench: wrote %s\n", path)
	}
	return 0
}
