// Command crhbench regenerates the paper's tables and figures.
//
// Usage:
//
//	crhbench -exp table2           # one experiment, small scale
//	crhbench -exp all -scale full  # everything at the paper's scale
//	crhbench -exp all -json .      # also write BENCH_<id>.json per experiment
//	crhbench -workers 1,2,4,8      # parallel-solver sweep over worker budgets
//	crhbench -ingest off,interval,batch  # WAL append throughput per fsync policy
//	crhbench -scales medium,large  # solver scale sweep, sequential vs parallel
//	crhbench -list                 # enumerate experiment IDs
//
// Small scale shrinks the large simulations so every experiment finishes
// in seconds; full scale uses the paper's data set sizes (Tables 1 and 3)
// and can take a long time for the baseline-heavy tables.
//
// With -json, each experiment additionally writes a machine-readable
// BENCH_<id>.json record (wall time, ns/op, allocations, table row
// counts) to the given directory, so CI can diff benchmark numbers
// across commits. The schema is documented in docs/OBSERVABILITY.md.
//
// With -workers, crhbench instead times the core solver on the Bank
// simulation (the largest tabular workload) once per listed worker
// budget, verifies each budget's output is bit-for-bit identical to the
// sequential run (the docs/PARALLEL.md contract), and — with -json —
// writes one BENCH_workers-<k>.json per budget. Every record pins
// gomaxprocs and workers; sweep numbers are only comparable between
// records agreeing on both.
//
// With -ingest, crhbench measures durable WAL append throughput (the
// internal/wal substrate behind crhd's -data-dir) once per listed fsync
// policy, verifies each log replays bit-identically, and — with -json —
// writes one BENCH_ingest-<policy>.json per policy with an obs_per_sec
// field.
//
// With -scales, crhbench times the core solver on growing Bank
// simulations (small, medium, large tiers), running each tier once
// sequentially and once at an 8-worker budget, verifying the two are
// bit-for-bit identical, and — with -json — writing one
// BENCH_scale-<tier>.json per tier with seq_wall_ns and speedup fields.
// The speedup only reflects hardware parallelism when gomaxprocs
// exceeds 1; the record pins gomaxprocs so CI can tell.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"math"
	"math/rand"
	"os"
	"path/filepath"
	"runtime"
	"strconv"
	"strings"
	"time"

	"github.com/crhkit/crh/internal/core"
	"github.com/crhkit/crh/internal/data"
	"github.com/crhkit/crh/internal/experiments"
	"github.com/crhkit/crh/internal/obs/buildinfo"
	"github.com/crhkit/crh/internal/synth"
	"github.com/crhkit/crh/internal/wal"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

// benchRecord is the BENCH_<id>.json document written for each
// experiment under -json.
type benchRecord struct {
	Name    string `json:"name"`
	Caption string `json:"caption"`
	Scale   string `json:"scale"`
	// Runs is the number of times the experiment executed; WallNs the
	// total wall time and NsPerOp the per-run average.
	Runs    int   `json:"runs"`
	WallNs  int64 `json:"wall_ns"`
	NsPerOp int64 `json:"ns_per_op"`
	// AllocBytes/AllocObjects are heap-allocation deltas over the runs
	// (runtime.MemStats TotalAlloc/Mallocs), an upper bound that includes
	// any concurrent allocation.
	AllocBytes   uint64 `json:"alloc_bytes"`
	AllocObjects uint64 `json:"alloc_objects"`
	// TableRows counts the data rows across the report's tables — a
	// cheap fingerprint that the experiment produced full output. Sweep
	// records count resolved truth entries instead.
	TableRows int    `json:"table_rows"`
	GoVersion string `json:"go_version"`
	// GoMaxProcs pins the GOMAXPROCS the record was measured under, and
	// Workers the solver worker budget (0 = the experiment's own
	// default). Results never depend on either — the solver is
	// bit-identical at every budget — but wall times do, so CI must only
	// diff records that agree on both fields.
	GoMaxProcs int `json:"gomaxprocs"`
	Workers    int `json:"workers"`
	// ObsPerSec is the sustained observation throughput of an ingest
	// sweep record (BENCH_ingest-<fsync>.json); zero elsewhere. Fsync
	// names the WAL fsync policy the rate was measured under — rates are
	// only comparable between records agreeing on it.
	ObsPerSec float64 `json:"obs_per_sec,omitempty"`
	Fsync     string  `json:"fsync,omitempty"` // see ObsPerSec
	// SeqWallNs and Speedup appear on scale-sweep records
	// (BENCH_scale-<tier>.json): the sequential (workers=1) wall time of
	// the same solve, and the ratio seq/parallel. Speedup only reflects
	// hardware parallelism when GoMaxProcs exceeds 1 — on a single-CPU
	// runner the parallel run still exercises the full work-stealing
	// path but its wall time hovers around the sequential one.
	SeqWallNs int64   `json:"seq_wall_ns,omitempty"`
	Speedup   float64 `json:"speedup,omitempty"`
}

// runMeasured executes one experiment, rendering its report to stdout
// and returning the filled benchmark record.
func runMeasured(e experiments.Experiment, s experiments.Scale, scaleName string, stdout io.Writer) benchRecord {
	var before, after runtime.MemStats
	runtime.ReadMemStats(&before)
	t0 := time.Now()
	rep := e.Run(s)
	wall := time.Since(t0)
	runtime.ReadMemStats(&after)
	rep.Render(stdout)
	rows := 0
	for _, t := range rep.Tables {
		rows += len(t.Rows)
	}
	return benchRecord{
		Name:         e.ID,
		Caption:      e.Caption,
		Scale:        scaleName,
		Runs:         1,
		WallNs:       wall.Nanoseconds(),
		NsPerOp:      wall.Nanoseconds(),
		AllocBytes:   after.TotalAlloc - before.TotalAlloc,
		AllocObjects: after.Mallocs - before.Mallocs,
		TableRows:    rows,
		GoVersion:    runtime.Version(),
		GoMaxProcs:   runtime.GOMAXPROCS(0),
	}
}

// writeRecord marshals one benchmark record to dir/BENCH_<name>.json.
func writeRecord(dir string, rec benchRecord) error {
	buf, err := json.MarshalIndent(rec, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(filepath.Join(dir, "BENCH_"+rec.Name+".json"), append(buf, '\n'), 0o644)
}

// sameBits reports the first divergence between two solver results, or
// nil when they are bit-for-bit identical.
func sameBits(d *data.Dataset, ref, got *core.Result) error {
	if ref.Iterations != got.Iterations {
		return fmt.Errorf("iterations %d vs %d", ref.Iterations, got.Iterations)
	}
	for e := 0; e < d.NumEntries(); e++ {
		rv, rok := ref.Truths.Get(e)
		gv, gok := got.Truths.Get(e)
		if rok != gok || rv.C != gv.C || math.Float64bits(rv.F) != math.Float64bits(gv.F) {
			return fmt.Errorf("truth for entry %d", e)
		}
	}
	for k := range ref.Weights {
		if math.Float64bits(ref.Weights[k]) != math.Float64bits(got.Weights[k]) {
			return fmt.Errorf("weight of source %d", k)
		}
	}
	return nil
}

// runWorkersSweep times core.Run on the Bank simulation once per worker
// budget, cross-checking every budget against the sequential reference
// before any record is written.
func runWorkersSweep(list string, s experiments.Scale, scaleName, jsonDir string, stdout, stderr io.Writer) int {
	var budgets []int
	for _, field := range strings.Split(list, ",") {
		k, err := strconv.Atoi(strings.TrimSpace(field))
		if err != nil || k < 1 {
			fmt.Fprintf(stderr, "crhbench: -workers entry %q is not a positive integer\n", field)
			return 2
		}
		budgets = append(budgets, k)
	}
	d, _ := experiments.BankData(s)
	ref, err := core.Run(d, core.Config{Workers: 1})
	if err != nil {
		fmt.Fprintf(stderr, "crhbench: %v\n", err)
		return 1
	}
	fmt.Fprintf(stdout, "workers sweep: Bank simulation, %d entries, %d sources, gomaxprocs=%d\n",
		d.NumEntries(), d.NumSources(), runtime.GOMAXPROCS(0))
	for _, k := range budgets {
		var before, after runtime.MemStats
		runtime.ReadMemStats(&before)
		t0 := time.Now()
		res, err := core.Run(d, core.Config{Workers: k})
		wall := time.Since(t0)
		runtime.ReadMemStats(&after)
		if err != nil {
			fmt.Fprintf(stderr, "crhbench: workers=%d: %v\n", k, err)
			return 1
		}
		if err := sameBits(d, ref, res); err != nil {
			fmt.Fprintf(stderr, "crhbench: workers=%d diverged from sequential run: %v\n", k, err)
			return 1
		}
		fmt.Fprintf(stdout, "workers=%d: %v, %d iterations, bit-identical to sequential\n",
			k, wall.Round(time.Microsecond), res.Iterations)
		if jsonDir == "" {
			continue
		}
		rec := benchRecord{
			Name:         fmt.Sprintf("workers-%d", k),
			Caption:      fmt.Sprintf("Parallel CRH solver on the Bank simulation, worker budget %d", k),
			Scale:        scaleName,
			Runs:         1,
			WallNs:       wall.Nanoseconds(),
			NsPerOp:      wall.Nanoseconds(),
			AllocBytes:   after.TotalAlloc - before.TotalAlloc,
			AllocObjects: after.Mallocs - before.Mallocs,
			TableRows:    res.Truths.Count(),
			GoVersion:    runtime.Version(),
			GoMaxProcs:   runtime.GOMAXPROCS(0),
			Workers:      k,
		}
		if err := writeRecord(jsonDir, rec); err != nil {
			fmt.Fprintf(stderr, "crhbench: %v\n", err)
			return 1
		}
		fmt.Fprintf(stderr, "crhbench: wrote %s\n", filepath.Join(jsonDir, "BENCH_"+rec.Name+".json"))
	}
	return 0
}

// scaleTiers maps -scales tier names to Bank simulation ground-truth
// row counts. The small tier matches the workers sweep's dataset
// (experiments.BankData at ScaleSmall uses the same generator seed) so
// scale records chain onto the existing worker records; medium and
// large grow the entry count 4× and 12× to put the columnar freeze,
// the shard partials, and the scratch reuse well past cache-resident
// sizes. Each row contributes 16 entries (the Bank schema).
var scaleTiers = map[string]int{
	"small":  2000,
	"medium": 8000,
	"large":  24000,
}

// bankSeed mirrors experiments.BankData's generator seed (2014 + 4) so
// the small tier reproduces the workers sweep's dataset exactly.
const bankSeed = 2018

// runScaleSweep times the solver on the Bank simulation once per tier,
// sequentially and at an 8-worker budget, cross-checking the two runs
// bit for bit before any record is written.
func runScaleSweep(list, jsonDir string, stdout, stderr io.Writer) int {
	const parWorkers = 8
	for _, field := range strings.Split(list, ",") {
		tier := strings.TrimSpace(field)
		rows, ok := scaleTiers[tier]
		if !ok {
			fmt.Fprintf(stderr, "crhbench: unknown -scales tier %q (want small, medium or large)\n", tier)
			return 2
		}
		d, _ := synth.Bank(synth.UCIConfig{Seed: bankSeed, Rows: rows})
		fmt.Fprintf(stdout, "scale=%s: Bank simulation, %d entries, %d sources, gomaxprocs=%d\n",
			tier, d.NumEntries(), d.NumSources(), runtime.GOMAXPROCS(0))

		t0 := time.Now()
		ref, err := core.Run(d, core.Config{Workers: 1})
		seqWall := time.Since(t0)
		if err != nil {
			fmt.Fprintf(stderr, "crhbench: scale=%s sequential: %v\n", tier, err)
			return 1
		}
		var before, after runtime.MemStats
		runtime.ReadMemStats(&before)
		t1 := time.Now()
		res, err := core.Run(d, core.Config{Workers: parWorkers})
		parWall := time.Since(t1)
		runtime.ReadMemStats(&after)
		if err != nil {
			fmt.Fprintf(stderr, "crhbench: scale=%s workers=%d: %v\n", tier, parWorkers, err)
			return 1
		}
		if err := sameBits(d, ref, res); err != nil {
			fmt.Fprintf(stderr, "crhbench: scale=%s workers=%d diverged from sequential run: %v\n", tier, parWorkers, err)
			return 1
		}
		speedup := seqWall.Seconds() / parWall.Seconds()
		fmt.Fprintf(stdout, "scale=%s: seq %v, workers=%d %v (speedup %.2fx), %d iterations, bit-identical\n",
			tier, seqWall.Round(time.Microsecond), parWorkers, parWall.Round(time.Microsecond), speedup, res.Iterations)
		if jsonDir == "" {
			continue
		}
		rec := benchRecord{
			Name:         "scale-" + tier,
			Caption:      fmt.Sprintf("CRH solver scale sweep on the Bank simulation, %d rows (%d entries)", rows, d.NumEntries()),
			Scale:        tier,
			Runs:         1,
			WallNs:       parWall.Nanoseconds(),
			NsPerOp:      parWall.Nanoseconds(),
			AllocBytes:   after.TotalAlloc - before.TotalAlloc,
			AllocObjects: after.Mallocs - before.Mallocs,
			TableRows:    res.Truths.Count(),
			GoVersion:    runtime.Version(),
			GoMaxProcs:   runtime.GOMAXPROCS(0),
			Workers:      parWorkers,
			SeqWallNs:    seqWall.Nanoseconds(),
			Speedup:      speedup,
		}
		if err := writeRecord(jsonDir, rec); err != nil {
			fmt.Fprintf(stderr, "crhbench: %v\n", err)
			return 1
		}
		fmt.Fprintf(stderr, "crhbench: wrote %s\n", filepath.Join(jsonDir, "BENCH_"+rec.Name+".json"))
	}
	return 0
}

// ingestStream builds a deterministic observation stream for the WAL
// append benchmark: batches of mixed continuous/categorical claims over
// a rotating source/object pool, the same shape crhd's live ingest sees.
func ingestStream(batches, obsPerBatch int) [][]wal.Obs {
	rng := rand.New(rand.NewSource(7))
	conds := []string{"sunny", "rain", "snow", "fog"}
	out := make([][]wal.Obs, batches)
	for i := range out {
		batch := make([]wal.Obs, obsPerBatch)
		for j := range batch {
			o := wal.Obs{
				Source: fmt.Sprintf("s%02d", rng.Intn(40)),
				Object: fmt.Sprintf("o%04d", rng.Intn(5000)),
			}
			if rng.Intn(3) == 0 {
				o.Property, o.Kind = "cond", wal.Categorical
				o.Cat = conds[rng.Intn(len(conds))]
			} else {
				o.Property, o.Kind = "temp", wal.Continuous
				o.F = rng.NormFloat64()*12 + 20
			}
			if rng.Intn(4) == 0 {
				o.TS, o.HasTS = i, true
			}
			batch[j] = o
		}
		out[i] = batch
	}
	return out
}

// runIngestSweep measures durable WAL append throughput once per fsync
// policy, then replays each log and cross-checks the recovered stream
// bit-for-bit against what was appended before any record is written.
// crhbench is the one binary outside internal/server allowed to import
// internal/wal, precisely for this benchmark (docs/LINT.md).
func runIngestSweep(list, jsonDir string, stdout, stderr io.Writer) int {
	const batches, obsPerBatch = 2000, 50
	stream := ingestStream(batches, obsPerBatch)
	fmt.Fprintf(stdout, "ingest sweep: %d batches x %d observations, gomaxprocs=%d\n",
		batches, obsPerBatch, runtime.GOMAXPROCS(0))
	for _, field := range strings.Split(list, ",") {
		policy, err := wal.ParseFsyncPolicy(strings.TrimSpace(field))
		if err != nil {
			fmt.Fprintf(stderr, "crhbench: %v\n", err)
			return 2
		}
		dir, err := os.MkdirTemp("", "crhbench-ingest-*")
		if err != nil {
			fmt.Fprintf(stderr, "crhbench: %v\n", err)
			return 1
		}
		defer os.RemoveAll(dir)

		l, _, err := wal.OpenLog(dir, wal.Options{Fsync: policy})
		if err != nil {
			fmt.Fprintf(stderr, "crhbench: %v\n", err)
			return 1
		}
		var before, after runtime.MemStats
		runtime.ReadMemStats(&before)
		t0 := time.Now()
		for i, b := range stream {
			if err := l.AppendBatch(int64(i+2), b); err != nil {
				fmt.Fprintf(stderr, "crhbench: append under fsync=%s: %v\n", policy, err)
				return 1
			}
		}
		if err := l.Close(); err != nil {
			fmt.Fprintf(stderr, "crhbench: %v\n", err)
			return 1
		}
		wall := time.Since(t0)
		runtime.ReadMemStats(&after)

		// Replay integrity: the log must hand back the exact stream.
		l2, replayed, err := wal.OpenLog(dir, wal.Options{})
		if err != nil {
			fmt.Fprintf(stderr, "crhbench: reopen under fsync=%s: %v\n", policy, err)
			return 1
		}
		if err := l2.Close(); err != nil {
			fmt.Fprintf(stderr, "crhbench: close replay log under fsync=%s: %v\n", policy, err)
			return 1
		}
		if len(replayed) != len(stream) {
			fmt.Fprintf(stderr, "crhbench: fsync=%s replayed %d of %d batches\n", policy, len(replayed), len(stream))
			return 1
		}
		for i, b := range replayed {
			if err := sameObs(stream[i], b.Obs); err != nil {
				fmt.Fprintf(stderr, "crhbench: fsync=%s batch %d diverged on replay: %v\n", policy, i, err)
				return 1
			}
		}

		totalObs := batches * obsPerBatch
		rate := float64(totalObs) / wall.Seconds()
		fmt.Fprintf(stdout, "fsync=%-8s %8.0f obs/sec (%v for %d observations), replay bit-identical\n",
			policy, rate, wall.Round(time.Millisecond), totalObs)
		if jsonDir == "" {
			continue
		}
		rec := benchRecord{
			Name:         "ingest-" + policy.String(),
			Caption:      fmt.Sprintf("Durable WAL append throughput, fsync=%s", policy),
			Scale:        "small",
			Runs:         batches,
			WallNs:       wall.Nanoseconds(),
			NsPerOp:      wall.Nanoseconds() / int64(batches),
			AllocBytes:   after.TotalAlloc - before.TotalAlloc,
			AllocObjects: after.Mallocs - before.Mallocs,
			TableRows:    totalObs,
			GoVersion:    runtime.Version(),
			GoMaxProcs:   runtime.GOMAXPROCS(0),
			ObsPerSec:    rate,
			Fsync:        policy.String(),
		}
		if err := writeRecord(jsonDir, rec); err != nil {
			fmt.Fprintf(stderr, "crhbench: %v\n", err)
			return 1
		}
		fmt.Fprintf(stderr, "crhbench: wrote %s\n", filepath.Join(jsonDir, "BENCH_"+rec.Name+".json"))
	}
	return 0
}

// sameObs reports the first divergence between two observation slices
// (Float64bits comparison for continuous values), or nil.
func sameObs(want, got []wal.Obs) error {
	if len(want) != len(got) {
		return fmt.Errorf("%d vs %d observations", len(want), len(got))
	}
	for i := range want {
		w, g := want[i], got[i]
		if w.Source != g.Source || w.Object != g.Object || w.Property != g.Property ||
			w.Kind != g.Kind || w.Cat != g.Cat || w.TS != g.TS || w.HasTS != g.HasTS ||
			math.Float64bits(w.F) != math.Float64bits(g.F) {
			return fmt.Errorf("observation %d: %+v vs %+v", i, w, g)
		}
	}
	return nil
}

// run is the testable entry point; it returns the process exit code.
func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("crhbench", flag.ContinueOnError)
	fs.SetOutput(stderr)
	exp := fs.String("exp", "all", "experiment ID (e.g. table2, fig5) or 'all'")
	scale := fs.String("scale", "small", "data scale: small | full")
	list := fs.Bool("list", false, "list experiment IDs and exit")
	jsonDir := fs.String("json", "", "write a BENCH_<id>.json record per experiment to this directory")
	workersList := fs.String("workers", "", "comma-separated solver worker budgets: time the Bank workload per budget instead of running experiments")
	ingestList := fs.String("ingest", "", "comma-separated WAL fsync policies (off,interval,batch): measure durable append throughput per policy instead of running experiments")
	scalesList := fs.String("scales", "", "comma-separated solver scale tiers (small,medium,large): time the Bank workload sequential vs parallel per tier instead of running experiments")
	version := fs.Bool("version", false, "print version information and exit")
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if *version {
		buildinfo.Print(stderr, "crhbench")
		return 0
	}

	if *list {
		reg := experiments.Registry()
		for _, id := range experiments.IDs() {
			fmt.Fprintf(stdout, "%-8s %s\n", id, reg[id].Caption)
		}
		return 0
	}

	var s experiments.Scale
	switch *scale {
	case "small":
		s = experiments.ScaleSmall
	case "full":
		s = experiments.ScaleFull
	default:
		fmt.Fprintf(stderr, "crhbench: unknown scale %q (want small or full)\n", *scale)
		return 2
	}

	if *ingestList != "" {
		return runIngestSweep(*ingestList, *jsonDir, stdout, stderr)
	}
	if *workersList != "" {
		return runWorkersSweep(*workersList, s, *scale, *jsonDir, stdout, stderr)
	}
	if *scalesList != "" {
		return runScaleSweep(*scalesList, *jsonDir, stdout, stderr)
	}

	reg := experiments.Registry()
	var ids []string
	if *exp == "all" {
		ids = experiments.IDs()
	} else {
		if _, ok := reg[*exp]; !ok {
			fmt.Fprintf(stderr, "crhbench: unknown experiment %q; -list shows the options\n", *exp)
			return 2
		}
		ids = []string{*exp}
	}

	for _, id := range ids {
		if *exp == "all" {
			fmt.Fprintf(stdout, ">>> running %s ...\n", id)
		}
		rec := runMeasured(reg[id], s, *scale, stdout)
		if *jsonDir == "" {
			continue
		}
		if err := writeRecord(*jsonDir, rec); err != nil {
			fmt.Fprintf(stderr, "crhbench: %v\n", err)
			return 1
		}
		fmt.Fprintf(stderr, "crhbench: wrote %s\n", filepath.Join(*jsonDir, "BENCH_"+id+".json"))
	}
	return 0
}
