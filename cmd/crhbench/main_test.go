package main

import (
	"bytes"
	"strings"
	"testing"
)

func TestCrhbenchList(t *testing.T) {
	var out, errB bytes.Buffer
	if code := run([]string{"-list"}, &out, &errB); code != 0 {
		t.Fatalf("exit %d", code)
	}
	for _, id := range []string{"table1", "table2", "fig1", "table6", "fig8"} {
		if !strings.Contains(out.String(), id) {
			t.Errorf("listing missing %s", id)
		}
	}
}

func TestCrhbenchSingleExperiment(t *testing.T) {
	var out, errB bytes.Buffer
	if code := run([]string{"-exp", "table1"}, &out, &errB); code != 0 {
		t.Fatalf("exit %d (%s)", code, errB.String())
	}
	if !strings.Contains(out.String(), "# Observations") {
		t.Fatalf("table1 output malformed:\n%s", out.String())
	}
}

func TestCrhbenchErrors(t *testing.T) {
	var out, errB bytes.Buffer
	if code := run([]string{"-exp", "table99"}, &out, &errB); code != 2 {
		t.Fatalf("unknown experiment: exit %d", code)
	}
	if code := run([]string{"-scale", "gigantic"}, &out, &errB); code != 2 {
		t.Fatalf("unknown scale: exit %d", code)
	}
	if code := run([]string{"-badflag"}, &out, &errB); code != 2 {
		t.Fatalf("bad flag: exit %d", code)
	}
}
