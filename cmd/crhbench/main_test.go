package main

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"strconv"
	"strings"
	"testing"
)

func TestCrhbenchList(t *testing.T) {
	var out, errB bytes.Buffer
	if code := run([]string{"-list"}, &out, &errB); code != 0 {
		t.Fatalf("exit %d", code)
	}
	for _, id := range []string{"table1", "table2", "fig1", "table6", "fig8"} {
		if !strings.Contains(out.String(), id) {
			t.Errorf("listing missing %s", id)
		}
	}
}

func TestCrhbenchSingleExperiment(t *testing.T) {
	var out, errB bytes.Buffer
	if code := run([]string{"-exp", "table1"}, &out, &errB); code != 0 {
		t.Fatalf("exit %d (%s)", code, errB.String())
	}
	if !strings.Contains(out.String(), "# Observations") {
		t.Fatalf("table1 output malformed:\n%s", out.String())
	}
}

func TestCrhbenchErrors(t *testing.T) {
	var out, errB bytes.Buffer
	if code := run([]string{"-exp", "table99"}, &out, &errB); code != 2 {
		t.Fatalf("unknown experiment: exit %d", code)
	}
	if code := run([]string{"-scale", "gigantic"}, &out, &errB); code != 2 {
		t.Fatalf("unknown scale: exit %d", code)
	}
	if code := run([]string{"-badflag"}, &out, &errB); code != 2 {
		t.Fatalf("bad flag: exit %d", code)
	}
}

// TestCrhbenchJSON runs one experiment with -json and validates the
// BENCH_<id>.json record.
func TestCrhbenchJSON(t *testing.T) {
	dir := t.TempDir()
	var out, errB bytes.Buffer
	if code := run([]string{"-exp", "table1", "-json", dir}, &out, &errB); code != 0 {
		t.Fatalf("exit %d (%s)", code, errB.String())
	}
	raw, err := os.ReadFile(filepath.Join(dir, "BENCH_table1.json"))
	if err != nil {
		t.Fatal(err)
	}
	var rec struct {
		Name      string `json:"name"`
		Scale     string `json:"scale"`
		Runs      int    `json:"runs"`
		WallNs    int64  `json:"wall_ns"`
		NsPerOp   int64  `json:"ns_per_op"`
		TableRows int    `json:"table_rows"`
		GoVersion string `json:"go_version"`
	}
	if err := json.Unmarshal(raw, &rec); err != nil {
		t.Fatal(err)
	}
	if rec.Name != "table1" || rec.Scale != "small" || rec.Runs != 1 {
		t.Errorf("record = %+v", rec)
	}
	if rec.WallNs <= 0 || rec.NsPerOp <= 0 || rec.TableRows <= 0 || rec.GoVersion == "" {
		t.Errorf("record has empty measurements: %+v", rec)
	}
	// The report still renders to stdout alongside the JSON.
	if !strings.Contains(out.String(), "# Observations") {
		t.Errorf("table1 report missing:\n%s", out.String())
	}
}

// TestCrhbenchWorkersSweep runs the parallel-solver sweep and validates
// that every budget's record pins the worker count and GOMAXPROCS.
func TestCrhbenchWorkersSweep(t *testing.T) {
	dir := t.TempDir()
	var out, errB bytes.Buffer
	if code := run([]string{"-workers", "1,3", "-json", dir}, &out, &errB); code != 0 {
		t.Fatalf("exit %d (%s)", code, errB.String())
	}
	for _, k := range []int{1, 3} {
		raw, err := os.ReadFile(filepath.Join(dir, "BENCH_workers-"+strconv.Itoa(k)+".json"))
		if err != nil {
			t.Fatal(err)
		}
		var rec struct {
			Name       string `json:"name"`
			WallNs     int64  `json:"wall_ns"`
			TableRows  int    `json:"table_rows"`
			GoMaxProcs int    `json:"gomaxprocs"`
			Workers    int    `json:"workers"`
		}
		if err := json.Unmarshal(raw, &rec); err != nil {
			t.Fatal(err)
		}
		if rec.Workers != k || rec.GoMaxProcs < 1 {
			t.Errorf("workers-%d record pins = %+v", k, rec)
		}
		if rec.WallNs <= 0 || rec.TableRows <= 0 {
			t.Errorf("workers-%d record has empty measurements: %+v", k, rec)
		}
	}
	if !strings.Contains(out.String(), "bit-identical to sequential") {
		t.Errorf("sweep output missing cross-check line:\n%s", out.String())
	}
}

// TestCrhbenchScaleSweep runs the solver scale sweep on the small tier
// and validates the record's sequential/parallel pair.
func TestCrhbenchScaleSweep(t *testing.T) {
	dir := t.TempDir()
	var out, errB bytes.Buffer
	if code := run([]string{"-scales", "small", "-json", dir}, &out, &errB); code != 0 {
		t.Fatalf("exit %d (%s)", code, errB.String())
	}
	raw, err := os.ReadFile(filepath.Join(dir, "BENCH_scale-small.json"))
	if err != nil {
		t.Fatal(err)
	}
	var rec struct {
		Name       string  `json:"name"`
		Scale      string  `json:"scale"`
		WallNs     int64   `json:"wall_ns"`
		SeqWallNs  int64   `json:"seq_wall_ns"`
		Speedup    float64 `json:"speedup"`
		TableRows  int     `json:"table_rows"`
		GoMaxProcs int     `json:"gomaxprocs"`
		Workers    int     `json:"workers"`
	}
	if err := json.Unmarshal(raw, &rec); err != nil {
		t.Fatal(err)
	}
	if rec.Name != "scale-small" || rec.Scale != "small" || rec.Workers != 8 || rec.GoMaxProcs < 1 {
		t.Errorf("record pins = %+v", rec)
	}
	if rec.WallNs <= 0 || rec.SeqWallNs <= 0 || rec.Speedup <= 0 || rec.TableRows <= 0 {
		t.Errorf("record has empty measurements: %+v", rec)
	}
	if !strings.Contains(out.String(), "bit-identical") {
		t.Errorf("sweep output missing cross-check line:\n%s", out.String())
	}
}

// TestCrhbenchScaleSweepBad covers unknown tier names.
func TestCrhbenchScaleSweepBad(t *testing.T) {
	var out, errB bytes.Buffer
	if code := run([]string{"-scales", "gigantic"}, &out, &errB); code != 2 {
		t.Fatalf("exit %d, want 2", code)
	}
}

// TestCrhbenchWorkersBad covers malformed -workers lists.
func TestCrhbenchWorkersBad(t *testing.T) {
	var out, errB bytes.Buffer
	if code := run([]string{"-workers", "1,zero"}, &out, &errB); code != 2 {
		t.Fatalf("exit %d, want 2", code)
	}
	if code := run([]string{"-workers", "0"}, &out, &errB); code != 2 {
		t.Fatalf("exit %d, want 2", code)
	}
}

// TestCrhbenchJSONBadDir covers the unwritable -json directory path.
func TestCrhbenchJSONBadDir(t *testing.T) {
	var out, errB bytes.Buffer
	if code := run([]string{"-exp", "table1", "-json", "/nonexistent-dir"}, &out, &errB); code != 1 {
		t.Fatalf("exit %d, want 1", code)
	}
}

// TestCrhbenchVersion checks -version prints build identity.
func TestCrhbenchVersion(t *testing.T) {
	var out, errB bytes.Buffer
	if code := run([]string{"-version"}, &out, &errB); code != 0 {
		t.Fatalf("exit %d", code)
	}
	if !strings.Contains(errB.String(), "crhbench ") {
		t.Fatalf("-version output %q", errB.String())
	}
}
