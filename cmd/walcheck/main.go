// Command walcheck is the crash-recovery harness for crhd's durable
// ingest (docs/DURABILITY.md). Each round it:
//
//  1. starts a crhd subprocess with -data-dir and -fsync=batch,
//  2. streams deterministic observation batches into it over HTTP,
//  3. SIGKILLs the process mid-stream — no shutdown hook runs,
//  4. restarts crhd over the same data directory,
//  5. asserts the recovered version covers every acknowledged batch
//     (at most one unacknowledged in-flight batch may additionally
//     survive), and
//  6. replays the same prefix of batches into a fresh memory-only crhd
//     and compares /v1/resolve and /v1/datasets/{name}/incremental
//     byte-for-byte — JSON renders float64 exactly, so byte equality is
//     Float64bits equality.
//
// Exits 0 when every round holds, 1 otherwise. Run via `make walcheck`.
package main

import (
	"bufio"
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"sync"
	"time"
)

func main() {
	os.Exit(run())
}

func run() int {
	var (
		rounds  = flag.Int("rounds", 3, "kill/recover rounds")
		batches = flag.Int("batches", 120, "max batches to stream per round")
		killAt  = flag.Int("kill-after", 40, "SIGKILL once this many batches are acknowledged")
		fsync   = flag.String("fsync", "batch", "crhd -fsync policy under test")
		seed    = flag.Int64("seed", 1, "base PRNG seed for batch generation")
	)
	flag.Parse()

	work, err := os.MkdirTemp("", "walcheck-*")
	if err != nil {
		fmt.Fprintf(os.Stderr, "walcheck: %v\n", err)
		return 1
	}
	defer os.RemoveAll(work)

	bin := filepath.Join(work, "crhd")
	build := exec.Command("go", "build", "-o", bin, "./cmd/crhd")
	build.Stdout, build.Stderr = os.Stderr, os.Stderr
	if err := build.Run(); err != nil {
		fmt.Fprintf(os.Stderr, "walcheck: build crhd: %v\n", err)
		return 1
	}

	for round := 0; round < *rounds; round++ {
		if err := oneRound(bin, work, round, *batches, *killAt, *fsync, *seed+int64(round)); err != nil {
			fmt.Fprintf(os.Stderr, "walcheck: round %d: %v\n", round, err)
			return 1
		}
		fmt.Printf("walcheck: round %d ok (fsync=%s)\n", round, *fsync)
	}
	fmt.Println("walcheck: crash recovery holds — recovered state bit-identical to an uncrashed replay")
	return 0
}

// crhdProc is one running crhd subprocess.
type crhdProc struct {
	cmd  *exec.Cmd
	base string // http://host:port
}

// startCrhd launches crhd and waits for its listen line.
func startCrhd(bin string, args ...string) (*crhdProc, error) {
	cmd := exec.Command(bin, append([]string{"-addr", "127.0.0.1:0"}, args...)...)
	stderr, err := cmd.StderrPipe()
	if err != nil {
		return nil, err
	}
	if err := cmd.Start(); err != nil {
		return nil, err
	}
	addrc := make(chan string, 1)
	go func() {
		sc := bufio.NewScanner(stderr)
		for sc.Scan() {
			line := sc.Text()
			if rest, ok := strings.CutPrefix(line, "crhd: listening on "); ok {
				select {
				case addrc <- strings.TrimSpace(rest):
				default:
				}
			}
		}
	}()
	select {
	case addr := <-addrc:
		return &crhdProc{cmd: cmd, base: "http://" + addr}, nil
	case <-time.After(15 * time.Second):
		cmd.Process.Kill()
		cmd.Wait()
		return nil, fmt.Errorf("crhd did not report a listen address")
	}
}

// kill SIGKILLs the subprocess — the crash under test — and reaps it.
func (p *crhdProc) kill() {
	p.cmd.Process.Kill()
	p.cmd.Wait()
}

func (p *crhdProc) post(path, body string) (int, []byte, error) {
	resp, err := http.Post(p.base+path, "application/json", strings.NewReader(body))
	if err != nil {
		return 0, nil, err
	}
	defer resp.Body.Close()
	raw, err := io.ReadAll(resp.Body)
	return resp.StatusCode, raw, err
}

func (p *crhdProc) get(path string) (int, []byte, error) {
	resp, err := http.Get(p.base + path)
	if err != nil {
		return 0, nil, err
	}
	defer resp.Body.Close()
	raw, err := io.ReadAll(resp.Body)
	return resp.StatusCode, raw, err
}

// batchJSON renders deterministic batch i of the round's stream: two to
// four observations mixing continuous and categorical claims from a
// small rotating source pool.
func batchJSON(rng *rand.Rand, i int) string {
	type obsJSON struct {
		Source   string `json:"source"`
		Object   string `json:"object"`
		Property string `json:"property"`
		Value    any    `json:"value"`
	}
	n := 2 + rng.Intn(3)
	obs := make([]obsJSON, n)
	for j := range obs {
		o := obsJSON{
			Source: fmt.Sprintf("s%d", rng.Intn(5)),
			Object: fmt.Sprintf("o%d", rng.Intn(7)),
		}
		if rng.Intn(2) == 0 {
			o.Property = "temp"
			o.Value = float64(rng.Intn(4000))/100 + float64(i)
		} else {
			o.Property = "cond"
			o.Value = []string{"sunny", "rain", "snow", "fog"}[rng.Intn(4)]
		}
		obs[j] = o
	}
	raw, _ := json.Marshal(map[string]any{"observations": obs})
	return string(raw)
}

func oneRound(bin, work string, round, batches, killAt int, fsync string, seed int64) error {
	dataDir := filepath.Join(work, fmt.Sprintf("data-%d", round))

	// Pre-render the whole stream so the reference replay sees the exact
	// same bytes.
	rng := rand.New(rand.NewSource(seed))
	stream := make([]string, batches)
	for i := range stream {
		stream[i] = batchJSON(rng, i)
	}

	victim, err := startCrhd(bin, "-data-dir", dataDir, "-fsync", fsync)
	if err != nil {
		return err
	}
	defer victim.kill()
	if code, body, err := victim.post("/v1/datasets/ds", ""); err != nil || code != http.StatusCreated {
		return fmt.Errorf("create: %d %s %v", code, body, err)
	}

	// Stream batches; fire the SIGKILL asynchronously once killAt are
	// acknowledged so the crash lands with an ingest likely in flight.
	var mu sync.Mutex
	acked := 0
	killed := make(chan struct{})
	go func() {
		defer close(killed)
		for {
			mu.Lock()
			n := acked
			mu.Unlock()
			if n >= killAt {
				victim.kill()
				return
			}
			time.Sleep(200 * time.Microsecond)
		}
	}()
	sent := 0
	for _, b := range stream {
		sent++
		code, _, err := victim.post("/v1/datasets/ds/observations", b)
		if err != nil || code != http.StatusOK {
			break // the kill landed (connection refused or mid-request)
		}
		mu.Lock()
		acked++
		mu.Unlock()
	}
	<-killed
	mu.Lock()
	ackedFinal := acked
	mu.Unlock()
	if ackedFinal < killAt {
		return fmt.Errorf("only %d batches acknowledged before the stream ended", ackedFinal)
	}

	// Restart over the same directory.
	revived, err := startCrhd(bin, "-data-dir", dataDir, "-fsync", fsync)
	if err != nil {
		return fmt.Errorf("restart: %w", err)
	}
	defer revived.kill()
	code, raw, err := revived.get("/v1/datasets/ds")
	if err != nil || code != http.StatusOK {
		return fmt.Errorf("recovered info: %d %s %v", code, raw, err)
	}
	var info struct {
		Version int64 `json:"version"`
	}
	if err := json.Unmarshal(raw, &info); err != nil {
		return err
	}
	// Version 1 is the create; batch k acknowledges version k+1. Every
	// acknowledged batch must have survived; at most the one in-flight
	// unacknowledged batch may additionally be durable.
	minV, maxV := int64(ackedFinal)+1, int64(sent)+1
	if info.Version < minV || info.Version > maxV {
		return fmt.Errorf("recovered version %d outside [%d, %d] (acked %d, sent %d)",
			info.Version, minV, maxV, ackedFinal, sent)
	}

	// Reference: an uncrashed memory-only crhd fed the same prefix.
	ref, err := startCrhd(bin)
	if err != nil {
		return err
	}
	defer ref.kill()
	if code, body, err := ref.post("/v1/datasets/ds", ""); err != nil || code != http.StatusCreated {
		return fmt.Errorf("reference create: %d %s %v", code, body, err)
	}
	for i := int64(0); i < info.Version-1; i++ {
		if code, body, err := ref.post("/v1/datasets/ds/observations", stream[i]); err != nil || code != http.StatusOK {
			return fmt.Errorf("reference ingest %d: %d %s %v", i, code, body, err)
		}
	}

	// Bit-identical serving state: full CRH resolve and warm I-CRH
	// truths/weights. Byte equality of the JSON is Float64bits equality.
	for _, probe := range []struct{ what, path, body string }{
		{"resolve", "/v1/datasets/ds/resolve", "{}"},
		{"incremental", "/v1/datasets/ds/incremental", ""},
	} {
		var got, want []byte
		if probe.body != "" {
			_, got, err = revived.post(probe.path, probe.body)
		} else {
			_, got, err = revived.get(probe.path)
		}
		if err != nil {
			return fmt.Errorf("%s after recovery: %w", probe.what, err)
		}
		if probe.body != "" {
			_, want, err = ref.post(probe.path, probe.body)
		} else {
			_, want, err = ref.get(probe.path)
		}
		if err != nil {
			return fmt.Errorf("reference %s: %w", probe.what, err)
		}
		if !bytes.Equal(got, want) {
			return fmt.Errorf("%s diverged after crash recovery:\nrecovered: %s\nreference: %s", probe.what, got, want)
		}
	}
	return nil
}
