#!/bin/sh
# ci.sh — the full gate a change must pass before merging.
#
# Runs, in order:
#   1. make check      build + vet + crhlint + tests under the race
#                      detector (incl. the obs/server concurrency hammers)
#   2. make lint       redundant with check, but prints lint findings on
#                      their own so a lint failure is easy to spot in logs
#   3. make racehammer the core/obs/server concurrency hammers again, on
#                      their own so a data race is attributed in the logs
#   4. equivalence     the parallel-vs-sequential bit-identity suite on
#                      its own (docs/PARALLEL.md's contract), so a
#                      determinism regression is named in the logs
#   5. make walcheck   SIGKILL a crhd subprocess mid-ingest and verify the
#                      restarted server recovers bit-identical state
#                      (docs/DURABILITY.md's contract)
#   6. make fuzz       a short coverage-guided fuzz pass over the decoder,
#                      the solver, and the WAL record codec (the committed
#                      corpora already ran as plain tests inside make check)
#   7. make loadcheck  boot a real crhd and drive a seeded crhload smoke
#                      against it: zero request errors and populated
#                      per-stage latency histograms (docs/LOAD.md)
#   8. allocation pins the AllocsPerRun pins on the resolve encode /
#                      cached-bytes serve paths and the solver's
#                      zero-allocation-per-iteration contract, on their
#                      own so an allocation regression in either hot
#                      path is named in the logs (the golden
#                      byte-equality suite already ran inside make check)
#   9. coverage floor  go test -coverprofile over the solver and data
#                      layers; fails if combined statement coverage of
#                      internal/core + internal/data + internal/col
#                      falls below the floor, and archives the profile
#                      under results/coverage.out
#  10. lint self-check every analyzer crhlint -list reports must have a
#                      golden testdata package, and the full -json report
#                      (suppressed findings included) is archived under
#                      results/lint-report.json as the audit record
#  11. gofmt -l        fails if any tracked Go file is unformatted
#
# Exits non-zero on the first failure.

set -eu

cd "$(dirname "$0")/.."

echo "==> make check"
make check

echo "==> make lint"
make lint

echo "==> make racehammer"
make racehammer

echo "==> equivalence suite"
go test -run 'TestEquivalence|TestMetamorphic' -count=1 ./internal/core/

echo "==> walcheck (crash recovery)"
make walcheck

echo "==> fuzz (short)"
make fuzz FUZZTIME=5s

echo "==> loadcheck (serve-path smoke)"
make loadcheck

echo "==> allocation pins (encode + solver iterations)"
go test -run 'TestEncodeAllocs' -count=1 ./internal/server/
go test -run 'TestSolverIterationAllocFree|TestSolverRunReusesPrepared' -count=1 ./internal/core/

echo "==> coverage floor (solver + data layers)"
mkdir -p results
go test -count=1 -coverprofile=results/coverage.out \
	-coverpkg=./internal/core/...,./internal/data/...,./internal/col/... \
	./internal/core/... ./internal/data/... ./internal/col/... > /dev/null
total=$(go tool cover -func=results/coverage.out | awk '/^total:/ {sub(/%/, "", $3); print $3}')
floor=85.0
if awk -v t="$total" -v f="$floor" 'BEGIN { exit !(t < f) }'; then
	echo "coverage floor: ${total}% < ${floor}% over internal/{core,data,col}" >&2
	exit 1
fi
echo "coverage floor: ${total}% >= ${floor}% (profile archived at results/coverage.out)"

echo "==> lint self-check (golden coverage + json report)"
missing=""
for name in $(go run ./cmd/crhlint -list | awk '{print $1}'); do
	if [ ! -d "internal/lint/testdata/src/$name" ]; then
		missing="$missing $name"
	fi
done
if [ -n "$missing" ]; then
	echo "lint self-check: analyzers without a golden testdata package:$missing" >&2
	exit 1
fi
mkdir -p results
go run ./cmd/crhlint -json ./... > results/lint-report.json
echo "lint self-check: report archived at results/lint-report.json"

echo "==> gofmt"
unformatted=$(gofmt -l .)
if [ -n "$unformatted" ]; then
	echo "gofmt: the following files are not formatted:" >&2
	echo "$unformatted" >&2
	exit 1
fi

echo "ci: all gates passed"
