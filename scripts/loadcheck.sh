#!/bin/sh
# loadcheck.sh — boot a real crhd and drive a short seeded crhload
# smoke against it. The gate (crhload -check) fails unless the run had
# zero request errors and the server's /v1/stats shows the resolve
# pipeline's stage histograms populated — i.e. the per-request span
# instrumentation actually measured the pipeline end to end.
#
# Exits non-zero on any failure; the crhd subprocess is always reaped.

set -eu

cd "$(dirname "$0")/.."

go build -o bin/crhd ./cmd/crhd
go build -o bin/crhload ./cmd/crhload

log=$(mktemp)
./bin/crhd -addr 127.0.0.1:0 -stage-log 64 >"$log" 2>&1 &
crhd_pid=$!
trap 'kill "$crhd_pid" 2>/dev/null; wait "$crhd_pid" 2>/dev/null || true; rm -f "$log"' EXIT

# The server prints "crhd: listening on <addr>" once the listener is up.
addr=""
for _ in $(seq 1 100); do
	addr=$(sed -n 's/^crhd: listening on //p' "$log")
	if [ -n "$addr" ]; then
		break
	fi
	if ! kill -0 "$crhd_pid" 2>/dev/null; then
		echo "loadcheck: crhd exited before becoming ready:" >&2
		cat "$log" >&2
		exit 1
	fi
	sleep 0.1
done
if [ -z "$addr" ]; then
	echo "loadcheck: crhd never reported its address:" >&2
	cat "$log" >&2
	exit 1
fi

echo "loadcheck: crhd ready on $addr"
./bin/crhload -addr "http://$addr" -profile smoke -seed 7 -check

echo "loadcheck: passed"
