package crh

import "github.com/crhkit/crh/internal/synth"

// Synthetic multi-source data generators — the workloads of the paper's
// evaluation. Each returns a conflicting dataset plus its (possibly
// partial) ground truth, and is deterministic for a given seed. They are
// exposed publicly so the experiments are reproducible from library code,
// and because realistic conflicting-source generators are useful for
// testing any truth-discovery pipeline.

// WeatherOptions parameterizes the weather-forecast simulator (Section
// 3.2.1's crawl: 3 platforms × 3 lead days = 9 sources, mixed
// continuous/categorical properties, day timestamps).
type WeatherOptions = synth.WeatherConfig

// StockOptions parameterizes the deep-web stock-quote simulator (55
// sources, 16 properties, staleness-event error structure).
type StockOptions = synth.StockConfig

// FlightOptions parameterizes the flight-status simulator (38 sources, 4
// time + 2 gate properties, missed-update error structure).
type FlightOptions = synth.FlightConfig

// UCIOptions parameterizes the Adult/Bank noise-injection simulations of
// Section 3.2.2 (schema-faithful synthetic rows corrupted per source by
// the reliability parameter γ).
type UCIOptions = synth.UCIConfig

// SourceProfile describes one simulated source's reliability (γ) and
// coverage for GenerateAdult/GenerateBank.
type SourceProfile = synth.SourceProfile

// GenerateWeather builds the weather-forecast integration workload.
func GenerateWeather(opts WeatherOptions) (*Dataset, *Table) { return synth.Weather(opts) }

// GenerateStock builds the stock-quote integration workload.
func GenerateStock(opts StockOptions) (*Dataset, *Table) { return synth.Stock(opts) }

// GenerateFlight builds the flight-status integration workload.
func GenerateFlight(opts FlightOptions) (*Dataset, *Table) { return synth.Flight(opts) }

// GenerateAdult builds the Adult-equivalent simulation (32,561 rows × 14
// properties at full scale; 8 sources with γ = 0.1 … 2 by default).
func GenerateAdult(opts UCIOptions) (*Dataset, *Table) { return synth.Adult(opts) }

// GenerateBank builds the Bank-equivalent simulation (45,211 rows × 16
// properties at full scale).
func GenerateBank(opts UCIOptions) (*Dataset, *Table) { return synth.Bank(opts) }

// PaperSourceProfiles returns the paper's 8-source reliability spectrum
// (γ = {0.1, 0.4, 0.7, 1, 1.3, 1.6, 1.9, 2}) for GenerateAdult and
// GenerateBank.
func PaperSourceProfiles() []SourceProfile { return synth.PaperProfiles() }
