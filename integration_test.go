package crh_test

// Cross-variant integration tests: the same dataset resolved by batch,
// streaming and MapReduce CRH, serialized and reloaded, compared against
// ground truth and each other. These are the end-to-end guarantees a
// downstream user relies on.

import (
	"bytes"
	"math"
	"testing"

	crh "github.com/crhkit/crh"
)

func TestIntegrationWeatherPipeline(t *testing.T) {
	if testing.Short() {
		t.Skip("integration")
	}
	d, gt := crh.GenerateWeather(crh.WeatherOptions{Seed: 1234})

	// 1. Batch CRH.
	batch, err := crh.Run(d, crh.Options{})
	if err != nil {
		t.Fatal(err)
	}
	mb := crh.Evaluate(d, batch.Truths, gt)

	// 2. The same data via serialization round-trip must give identical
	// metrics.
	var buf bytes.Buffer
	if err := crh.WriteDataset(&buf, d, gt); err != nil {
		t.Fatal(err)
	}
	d2, gt2, err := crh.ReadDataset(&buf)
	if err != nil {
		t.Fatal(err)
	}
	batch2, err := crh.Run(d2, crh.Options{})
	if err != nil {
		t.Fatal(err)
	}
	mb2 := crh.Evaluate(d2, batch2.Truths, gt2)
	// Decoding interns sources in first-encounter order, so weighted-
	// median ties may resolve differently at the last ulp; metrics must
	// agree to practical precision, not bit-for-bit.
	if math.Abs(mb.ErrorRate-mb2.ErrorRate) > 0.01 || math.Abs(mb.MNAD-mb2.MNAD) > 0.01 {
		t.Fatalf("codec round-trip changed results: %+v vs %+v", mb, mb2)
	}

	// 3. Streaming on daily chunks: close to batch.
	inc, err := crh.RunStream(d, 1, crh.StreamOptions{})
	if err != nil {
		t.Fatal(err)
	}
	mi := crh.Evaluate(d, inc.Truths, gt)
	if mi.ErrorRate > mb.ErrorRate+0.05 {
		t.Fatalf("stream error %v too far from batch %v", mi.ErrorRate, mb.ErrorRate)
	}

	// 4. MapReduce: near-identical to batch.
	par, err := crh.RunParallel(d, crh.ParallelOptions{Reducers: 6})
	if err != nil {
		t.Fatal(err)
	}
	mp := crh.Evaluate(d, par.Truths, gt)
	if math.Abs(mp.ErrorRate-mb.ErrorRate) > 0.02 {
		t.Fatalf("parallel error %v diverges from batch %v", mp.ErrorRate, mb.ErrorRate)
	}

	// 5. All three weight vectors agree on the reliability ordering of
	// the extreme sources.
	best, worst := 0, 0
	for k, w := range batch.Weights {
		if w > batch.Weights[best] {
			best = k
		}
		if w < batch.Weights[worst] {
			worst = k
		}
	}
	if !(inc.Weights[best] > inc.Weights[worst]) {
		t.Error("stream weights disagree on extreme sources")
	}
	if !(par.Weights[best] > par.Weights[worst]) {
		t.Error("parallel weights disagree on extreme sources")
	}
}

// TestIntegrationAllMethodsAllDatasets smoke-runs every method on every
// generator at tiny scale: no panics, no NaN weights, sane metric ranges.
func TestIntegrationAllMethodsAllDatasets(t *testing.T) {
	if testing.Short() {
		t.Skip("integration")
	}
	datasets := []struct {
		name string
		d    *crh.Dataset
		gt   *crh.Table
	}{}
	d, gt := crh.GenerateWeather(crh.WeatherOptions{Seed: 5, Cities: 4, Days: 6})
	datasets = append(datasets, struct {
		name string
		d    *crh.Dataset
		gt   *crh.Table
	}{"weather", d, gt})
	d, gt = crh.GenerateStock(crh.StockOptions{Seed: 5, Symbols: 10, Days: 3})
	datasets = append(datasets, struct {
		name string
		d    *crh.Dataset
		gt   *crh.Table
	}{"stock", d, gt})
	d, gt = crh.GenerateFlight(crh.FlightOptions{Seed: 5, Flights: 10, Days: 3})
	datasets = append(datasets, struct {
		name string
		d    *crh.Dataset
		gt   *crh.Table
	}{"flight", d, gt})
	d, gt = crh.GenerateAdult(crh.UCIOptions{Seed: 5, Rows: 50})
	datasets = append(datasets, struct {
		name string
		d    *crh.Dataset
		gt   *crh.Table
	}{"adult", d, gt})
	d, gt = crh.GenerateBank(crh.UCIOptions{Seed: 5, Rows: 50})
	datasets = append(datasets, struct {
		name string
		d    *crh.Dataset
		gt   *crh.Table
	}{"bank", d, gt})

	for _, set := range datasets {
		res, err := crh.Run(set.d, crh.Options{})
		if err != nil {
			t.Fatalf("%s: CRH: %v", set.name, err)
		}
		for _, w := range res.Weights {
			if math.IsNaN(w) || math.IsInf(w, 0) || w < 0 {
				t.Fatalf("%s: CRH weight %v", set.name, w)
			}
		}
		m := crh.Evaluate(set.d, res.Truths, set.gt)
		_ = m
		for _, method := range crh.Baselines() {
			truths, rel := method.Resolve(set.d)
			if truths == nil {
				t.Fatalf("%s/%s: nil truths", set.name, method.Name())
			}
			for _, r := range rel {
				if math.IsNaN(r) {
					t.Fatalf("%s/%s: NaN reliability", set.name, method.Name())
				}
			}
			bm := crh.Evaluate(set.d, truths, set.gt)
			if !math.IsNaN(bm.ErrorRate) && (bm.ErrorRate < 0 || bm.ErrorRate > 1) {
				t.Fatalf("%s/%s: error rate %v", set.name, method.Name(), bm.ErrorRate)
			}
			if !math.IsNaN(bm.MNAD) && bm.MNAD < 0 {
				t.Fatalf("%s/%s: MNAD %v", set.name, method.Name(), bm.MNAD)
			}
		}
	}
}
