# Tier-1 gate: everything a PR must keep green.
#   make check     build + vet + tests with the race detector
#   make test      fast test run (no race detector)
#   make bench     all benchmarks
#   make crhd      build the truth-discovery server binary

GO ?= go

.PHONY: check build vet test race bench crhd clean

check: build vet race

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

bench:
	$(GO) test -bench=. -benchmem ./...

crhd:
	$(GO) build -o bin/crhd ./cmd/crhd

clean:
	rm -rf bin
