# Tier-1 gate: everything a PR must keep green.
#   make check      build + vet + lint + tests with the race detector
#   make lint       project-specific static analysis (cmd/crhlint)
#   make test       fast test run (no race detector)
#   make bench      all benchmarks
#   make benchjson  machine-readable BENCH_<id>.json experiment records
#   make racehammer concurrency hammer tests (core + obs + server), repeated
#   make fuzz       short fuzz pass over every fuzz target (committed
#                   corpora always run as part of `make test` already)
#   make walcheck   kill -9 a crhd subprocess mid-ingest and prove the
#                   recovered state is bit-identical to an uncrashed replay
#   make loadcheck  boot crhd and drive a short seeded crhload smoke
#                   against it (zero errors, stage histograms populated)
#   make crhd       build the truth-discovery server binary
#   make crhload    build the load-generator binary

GO ?= go
FUZZTIME ?= 10s

.PHONY: check build vet lint test race bench benchjson racehammer fuzz walcheck loadcheck crhd crhload clean

check: build vet lint race racehammer

lint:
	$(GO) run ./cmd/crhlint ./...

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

bench:
	$(GO) test -bench=. -benchmem ./...

benchjson:
	$(GO) run ./cmd/crhbench -exp all -scale small -json .
	$(GO) run ./cmd/crhbench -workers 1,2,4,8 -scale small -json .
	$(GO) run ./cmd/crhbench -ingest off,interval,batch -json .

racehammer:
	$(GO) test -race -count=2 -run 'Concurrent|Hammer' ./internal/core/... ./internal/obs/... ./internal/server/...

# Go runs one -fuzz pattern per package invocation, so each target gets
# its own line.
fuzz:
	$(GO) test -fuzz=FuzzDecode -fuzztime=$(FUZZTIME) ./internal/data/
	$(GO) test -fuzz=FuzzRunSmall -fuzztime=$(FUZZTIME) ./internal/core/
	$(GO) test -fuzz=FuzzWALRecord -fuzztime=$(FUZZTIME) ./internal/wal/
	$(GO) test -fuzz=FuzzEncodeResolveResponse -fuzztime=$(FUZZTIME) ./internal/server/

walcheck:
	$(GO) run ./cmd/walcheck

loadcheck:
	sh scripts/loadcheck.sh

crhd:
	$(GO) build -o bin/crhd ./cmd/crhd

crhload:
	$(GO) build -o bin/crhload ./cmd/crhload

clean:
	rm -rf bin
