# Tier-1 gate: everything a PR must keep green.
#   make check      build + vet + lint + tests with the race detector
#   make lint       project-specific static analysis (cmd/crhlint)
#   make test       fast test run (no race detector)
#   make bench      all benchmarks
#   make benchjson  machine-readable BENCH_<id>.json experiment records
#   make racehammer concurrency hammer tests (obs + server), repeated
#   make crhd       build the truth-discovery server binary

GO ?= go

.PHONY: check build vet lint test race bench benchjson racehammer crhd clean

check: build vet lint race racehammer

lint:
	$(GO) run ./cmd/crhlint ./...

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

bench:
	$(GO) test -bench=. -benchmem ./...

benchjson:
	$(GO) run ./cmd/crhbench -exp all -scale small -json .

racehammer:
	$(GO) test -race -count=2 -run 'Concurrent|Hammer' ./internal/obs/... ./internal/server/...

crhd:
	$(GO) build -o bin/crhd ./cmd/crhd

clean:
	rm -rf bin
