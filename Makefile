# Tier-1 gate: everything a PR must keep green.
#   make check     build + vet + lint + tests with the race detector
#   make lint      project-specific static analysis (cmd/crhlint)
#   make test      fast test run (no race detector)
#   make bench     all benchmarks
#   make crhd      build the truth-discovery server binary

GO ?= go

.PHONY: check build vet lint test race bench crhd clean

check: build vet lint race

lint:
	$(GO) run ./cmd/crhlint ./...

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

bench:
	$(GO) test -bench=. -benchmem ./...

crhd:
	$(GO) build -o bin/crhd ./cmd/crhd

clean:
	rm -rf bin
