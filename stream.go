package crh

import (
	"io"

	"github.com/crhkit/crh/internal/mapreduce"
	"github.com/crhkit/crh/internal/stream"
)

// Streaming (incremental) CRH — Algorithm 2 of the paper. Data arriving
// in timestamped chunks is processed one chunk at a time: truths for the
// chunk come from the source weights learned so far, and the weights are
// refreshed from decayed accumulated distances without revisiting past
// data.

// StreamOptions configures incremental CRH: the shared loss/scheme
// configuration plus the decay rate α controlling how fast past chunks'
// influence fades.
type StreamOptions = stream.Config

// StreamResult is the outcome of a full streaming run: a truth table
// aligned with the original dataset, the final weights, and the
// per-chunk weight trajectory.
type StreamResult = stream.Result

// StreamProcessor consumes chunks one at a time, for truly unbounded
// streams where no complete dataset ever exists.
type StreamProcessor = stream.Processor

// Chunk is one timestamped batch carved from a dataset.
type Chunk = stream.Chunk

// RunStream applies I-CRH over a timestamped dataset, splitting it into
// windows of `window` consecutive timestamps (e.g., days).
func RunStream(d *Dataset, window int, opts StreamOptions) (*StreamResult, error) {
	return stream.Run(d, window, opts)
}

// NewStreamProcessor returns a processor for an unbounded stream whose
// chunks share the given source count.
func NewStreamProcessor(numSources int, opts StreamOptions) *StreamProcessor {
	return stream.NewProcessor(numSources, opts)
}

// ChunksByWindow splits a timestamped dataset into consecutive windows,
// retaining the mapping back to original object indices.
func ChunksByWindow(d *Dataset, window int) ([]Chunk, error) {
	return stream.ChunksByWindow(d, window)
}

// Parallel CRH — Section 2.7 of the paper: CRH as iterated MapReduce jobs
// over (entry, value, source) tuples, for data sets that need distributed
// processing. The in-process engine executes the same job structure a
// Hadoop deployment would (mappers, combiner, sorted shuffle, reducers).

// ParallelOptions configures a parallel fusion: the shared core options,
// the mapper/reducer pool sizes, and the cluster cost model used to
// estimate what the job sequence would cost on a real deployment.
type ParallelOptions = mapreduce.ParallelConfig

// ParallelResult is a parallel fusion's outcome: truths, weights, per-job
// engine statistics, and measured plus model-estimated runtimes.
type ParallelResult = mapreduce.ParallelResult

// RunParallel executes CRH as iterated MapReduce jobs (one truth job and
// one weight job per iteration). With the paper's default losses the
// result is identical to Run's.
func RunParallel(d *Dataset, opts ParallelOptions) (*ParallelResult, error) {
	return mapreduce.RunParallel(d, opts)
}

// TSVStream incrementally reads the library's TSV observation format,
// yielding one timestamp-window chunk at a time without materializing the
// stream — for never-ending feeds that cannot be loaded with ReadDataset.
// Records must arrive in non-decreasing timestamp order with each object's
// O record before its V records; new sources and properties may join
// mid-stream (the Processor grows to accommodate them).
type TSVStream = stream.TSVStream

// NewTSVStream wraps a reader producing the TSV observation format.
// window is the number of consecutive timestamps per chunk.
func NewTSVStream(r io.Reader, window int) (*TSVStream, error) {
	return stream.NewTSVStream(r, window)
}
