package crh_test

import (
	"fmt"

	crh "github.com/crhkit/crh"
)

// The basic workflow: build a dataset from conflicting observations, run
// CRH, read truths and source weights.
func ExampleRun() {
	b := crh.NewBuilder()
	// Three sources report tomorrow's forecast for one city; the third
	// source is unreliable across the board.
	obs := []struct {
		source string
		high   float64
		cond   string
	}{
		{"alpha", 84, "sunny"},
		{"beta", 83, "sunny"},
		{"gamma", 70, "rain"},
	}
	for _, o := range obs {
		b.ObserveFloat(o.source, "nyc", "high_temp", o.high)
		b.ObserveCat(o.source, "nyc", "condition", o.cond)
	}
	d := b.Build()

	res, err := crh.Run(d, crh.Options{})
	if err != nil {
		panic(err)
	}
	temp, _ := res.Truths.GetAt(0, 0)
	cond, _ := res.Truths.GetAt(0, 1)
	fmt.Printf("high_temp: %g\n", temp.F)
	fmt.Printf("condition: %s\n", d.Prop(1).CatName(int(cond.C)))
	fmt.Printf("gamma is least reliable: %v\n",
		res.Weights[2] < res.Weights[0] && res.Weights[2] < res.Weights[1])
	// Output:
	// high_temp: 83
	// condition: sunny
	// gamma is least reliable: true
}

// Losses and weight schemes are pluggable; here the weighted mean
// replaces the weighted median and only the top two sources are kept.
func ExampleRun_options() {
	b := crh.NewBuilder()
	for i, v := range []float64{10, 11, 12, 300} {
		b.ObserveFloat(fmt.Sprintf("s%d", i), "obj", "x", v)
	}
	res, err := crh.Run(b.Build(), crh.Options{
		ContinuousLoss: crh.SquaredLoss(),  // weighted mean (Eq 13-14)
		Scheme:         crh.TopJWeights(2), // keep the 2 best sources (Eq 7)
	})
	if err != nil {
		panic(err)
	}
	var kept int
	for _, w := range res.Weights {
		if w == 1 {
			kept++
		}
	}
	fmt.Printf("sources kept: %d\n", kept)
	v, _ := res.Truths.GetAt(0, 0)
	fmt.Printf("outlier excluded: %v\n", v.F < 20)
	// Output:
	// sources kept: 2
	// outlier excluded: true
}

// Incremental CRH consumes timestamped data chunk by chunk — each chunk
// is scanned once, using the weights learned from earlier chunks.
func ExampleRunStream() {
	b := crh.NewBuilder()
	for day := 0; day < 3; day++ {
		obj := fmt.Sprintf("day%d", day)
		b.ObserveFloat("good", obj, "reading", 100+float64(day))
		b.ObserveFloat("noisy", obj, "reading", 100+float64(day)+20)
		b.ObserveFloat("steady", obj, "reading", 100+float64(day)+1)
		b.SetTimestamp(obj, day)
	}
	res, err := crh.RunStream(b.Build(), 1, crh.StreamOptions{})
	if err != nil {
		panic(err)
	}
	fmt.Printf("chunks processed: %d\n", res.ChunkCount)
	fmt.Printf("entries resolved: %d\n", res.Truths.Count())
	// Output:
	// chunks processed: 3
	// entries resolved: 3
}

// Evaluate scores any method's output against a partial ground truth
// using the paper's measures.
func ExampleEvaluate() {
	b := crh.NewBuilder()
	b.ObserveCat("s1", "o", "color", "red")
	b.ObserveCat("s2", "o", "color", "red")
	b.ObserveCat("s3", "o", "color", "blue")
	d := b.Build()

	res, _ := crh.Run(d, crh.Options{})

	gt := crh.NewTable(d)
	id, _ := d.Prop(0).CatID("red")
	gt.SetAt(0, 0, crh.Cat(id))

	m := crh.Evaluate(d, res.Truths, gt)
	fmt.Printf("error rate: %.1f\n", m.ErrorRate)
	// Output:
	// error rate: 0.0
}

// The baselines from the paper's comparison run through the same Method
// interface as CRH.
func ExampleBaselines() {
	for _, m := range crh.Baselines()[:4] {
		fmt.Println(m.Name())
	}
	// Output:
	// Mean
	// Median
	// GTM
	// Voting
}
